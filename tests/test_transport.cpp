// Transport seam, threaded backend, and the record/replay bridge.
//
// Covers: the DES default at the seam (and that the refactor kept the DES
// deterministic — identical run-report bytes across identical runs), the
// "nampc-schedule/1" JSON round trip, threaded end-to-end WSS and MPC with
// online monitors (8 parties, the ISSUE acceptance shape), the determinism
// envelope (10 threaded runs with the same inputs produce monitor-clean,
// output-identical results even though interleavings differ), and the
// replay gate: a schedule recorded from a real threaded run, re-imported
// into the DES via ReplayAdversary, replays byte-identically twice.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "adversary/replay.h"
#include "mpc/mpc.h"
#include "net/schedule.h"
#include "net/threaded.h"
#include "net/transport.h"
#include "obs/report.h"
#include "sharing/wss.h"
#include "sim_helpers.h"

namespace nampc {
namespace {

using testing::make_sim;
using testing::SimSpec;

/// The dealer's row-0 polynomial for the WSS runs below: every backend and
/// every replay must share one input to compare outputs.
std::vector<Polynomial> fixed_row0s(int ts) {
  Rng rng(0xfeedu);
  return {Polynomial::random_with_constant(Fp(4242), ts, rng)};
}

/// Spawn callback: WSS with dealer 0 on every party, goal = has_output.
ThreadedSpawn wss_spawn(std::vector<Wss*>& instances) {
  return [&instances](Simulation& sim, PartyId id) {
    WssOptions opts;
    opts.num_secrets = 1;
    Wss& w = sim.party(id).spawn<Wss>("wss", 0, 0, opts, nullptr);
    instances[static_cast<std::size_t>(id)] = &w;
    if (id == 0) w.start(fixed_row0s(sim.params().ts));
    return [&w] { return w.has_output(); };
  };
}

/// Canonical encoding of one party's WSS output for cross-run comparison.
std::vector<std::uint64_t> wss_output_words(const Wss& w) {
  std::vector<std::uint64_t> out;
  out.push_back(static_cast<std::uint64_t>(w.outcome()));
  if (w.outcome() == WssOutcome::rows) {
    for (const Polynomial& p : w.rows()) {
      for (const Fp& c : p.coeffs()) out.push_back(c.value());
    }
  }
  return out;
}

TEST(TransportSeam, DesIsTheDefaultBackend) {
  SimSpec spec;
  auto sim = make_sim(spec);
  EXPECT_STREQ(sim->transport().name(), "des");
  DesTransport other(spec.params.n);
  sim->set_transport(&other);
  EXPECT_EQ(&sim->transport(), &other);
  sim->set_transport(nullptr);  // restores the built-in DES transport
  EXPECT_STREQ(sim->transport().name(), "des");
}

/// The seam refactor must not change what the DES computes: two identical
/// runs produce byte-identical run reports (the property the whole replay
/// machinery rests on).
TEST(TransportSeam, DesRunReportDeterministic) {
  auto report = [] {
    SimSpec spec;
    spec.params = testing::p7_2_1();
    spec.kind = NetworkKind::asynchronous;
    auto sim = make_sim(spec);
    std::vector<Wss*> inst;
    WssOptions opts;
    opts.num_secrets = 1;
    for (int i = 0; i < sim->n(); ++i) {
      inst.push_back(&sim->party(i).spawn<Wss>("wss", 0, 0, opts, nullptr));
    }
    inst[0]->start(fixed_row0s(sim->params().ts));
    const RunStatus status = sim->run();
    std::ostringstream os;
    obs::write_run_report(os, *sim, status, nullptr);
    return os.str();
  };
  const std::string first = report();
  const std::string second = report();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ScheduleJson, RoundTrip) {
  RecordedSchedule s;
  s.params = {8, 2, 1};
  s.kind = NetworkKind::asynchronous;
  s.seed = 99;
  s.tick_us = 150;
  s.backend = "threaded";
  s.records.push_back({1, 0, "wss", 0, 10, 14});
  s.records.push_back({0, 1, "wss", 1, 12, 13});
  s.records.push_back({0, 1, "wss", 0, 3, 9});
  s.sort();
  ASSERT_EQ(s.records.front().seq, 0u);
  ASSERT_EQ(s.records.front().from, 0);

  std::ostringstream os;
  write_schedule(os, s);
  RecordedSchedule back;
  std::string error;
  ASSERT_TRUE(read_schedule(os.str(), back, error)) << error;
  EXPECT_EQ(back.params.n, 8);
  EXPECT_EQ(back.params.ts, 2);
  EXPECT_EQ(back.params.ta, 1);
  EXPECT_EQ(back.kind, NetworkKind::asynchronous);
  EXPECT_EQ(back.seed, 99u);
  EXPECT_EQ(back.tick_us, 150);
  EXPECT_EQ(back.backend, "threaded");
  ASSERT_EQ(back.records.size(), 3u);
  EXPECT_EQ(back.records[0].key, "wss");
  EXPECT_EQ(back.records[2].from, 1);
  EXPECT_EQ(back.records[2].arrival_tick, 14);

  // Serialising the parsed value reproduces the original bytes.
  std::ostringstream os2;
  write_schedule(os2, back);
  EXPECT_EQ(os.str(), os2.str());

  RecordedSchedule bad;
  EXPECT_FALSE(read_schedule("{\"schema\":\"nampc-run-report/3\"}", bad, error));
  EXPECT_FALSE(read_schedule("not json", bad, error));
}

TEST(Threaded, EightPartyWssMonitorClean) {
  ThreadedConfig cfg;
  cfg.params = {8, 2, 1};
  cfg.seed = 21;
  cfg.tick_us = 100;
  // Watchdog budgets in this file are deadlock detectors, not perf gates:
  // they must hold even when ctest -j packs several heavy tests onto an
  // oversubscribed box, so they are sized an order of magnitude above the
  // unloaded wall time (table_transport.cpp measures the real numbers).
  cfg.timeout_s = 600.0;
  std::vector<Wss*> instances(8, nullptr);
  const ThreadedResult result = run_threaded(cfg, wss_spawn(instances));
  ASSERT_TRUE(result.completed) << "watchdog fired after " << result.wall_ms
                                << " ms";
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front().monitor << ": "
      << result.violations.front().detail;
  EXPECT_GT(result.monitor_events, 0u);
  EXPECT_GT(result.wire_messages, 0u);
  const std::vector<Polynomial> row0s = fixed_row0s(cfg.params.ts);
  for (int i = 0; i < cfg.params.n; ++i) {
    ASSERT_NE(instances[static_cast<std::size_t>(i)], nullptr);
    const Wss& w = *instances[static_cast<std::size_t>(i)];
    ASSERT_EQ(w.outcome(), WssOutcome::rows) << "party " << i;
    EXPECT_EQ(w.share(0), row0s[0].eval(eval_point(i))) << "party " << i;
  }
}

/// Satellite: the determinism envelope. Honest protocol outputs are
/// schedule-independent, so ten threaded runs (ten different real
/// interleavings) must agree output-for-output and stay monitor-clean.
TEST(Threaded, DeterminismEnvelopeTenRuns) {
  constexpr int kRuns = 10;
  std::vector<std::vector<std::uint64_t>> baseline;
  for (int run = 0; run < kRuns; ++run) {
    ThreadedConfig cfg;
    cfg.params = {4, 1, 0};
    cfg.seed = 5;
    cfg.tick_us = 50;
    cfg.timeout_s = 300.0;
    std::vector<Wss*> instances(4, nullptr);
    const ThreadedResult result = run_threaded(cfg, wss_spawn(instances));
    ASSERT_TRUE(result.completed) << "run " << run;
    ASSERT_TRUE(result.violations.empty())
        << "run " << run << ": " << result.violations.front().detail;
    std::vector<std::vector<std::uint64_t>> outputs;
    for (const Wss* w : instances) {
      ASSERT_NE(w, nullptr);
      outputs.push_back(wss_output_words(*w));
    }
    if (run == 0) {
      baseline = std::move(outputs);
      continue;
    }
    EXPECT_EQ(outputs, baseline) << "outputs diverged on run " << run;
  }
}

/// Acceptance shape: an 8-party end-to-end MPC over real threads,
/// monitor-clean, all honest parties agreeing on the output.
TEST(Threaded, EightPartyMpcMonitorClean) {
  const int n = 8;
  const Circuit circuit = [n] {
    Circuit c;
    std::vector<int> in;
    for (int i = 0; i < n; ++i) in.push_back(c.input(i));
    const int s = c.add(in[0], in[1]);
    const int m = c.mul(s, in[2]);
    c.mark_output(m);
    return c;
  }();
  ThreadedConfig cfg;
  cfg.params = {n, 2, 1};
  cfg.seed = 3;
  cfg.tick_us = 50;
  cfg.timeout_s = 1200.0;
  std::vector<Mpc*> instances(static_cast<std::size_t>(n), nullptr);
  const ThreadedResult result = run_threaded(
      cfg, [&](Simulation& sim, PartyId id) -> std::function<bool()> {
        const FpVec inputs = {Fp(static_cast<std::uint64_t>(10 + id))};
        Mpc& m = sim.party(id).spawn<Mpc>("mpc", circuit, inputs, nullptr);
        instances[static_cast<std::size_t>(id)] = &m;
        return [&m] { return m.has_output(); };
      });
  ASSERT_TRUE(result.completed) << "watchdog fired after " << result.wall_ms
                                << " ms";
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front().monitor << ": "
      << result.violations.front().detail;
  ASSERT_NE(instances[0], nullptr);
  const FpVec& first = instances[0]->output();
  for (int i = 1; i < n; ++i) {
    ASSERT_NE(instances[static_cast<std::size_t>(i)], nullptr);
    EXPECT_EQ(instances[static_cast<std::size_t>(i)]->output(), first)
        << "party " << i << " disagrees";
  }
}

/// Satellite + acceptance: a recorded threaded schedule re-imported into
/// the DES replays byte-identically — two replays of the same schedule
/// produce the same run-report bytes, and most deliveries match a recorded
/// delay rather than falling back to the model distribution.
TEST(RecordReplay, DesReplayByteIdenticalTwice) {
  ThreadedConfig cfg;
  cfg.params = {8, 2, 1};
  cfg.seed = 13;
  cfg.tick_us = 100;
  cfg.timeout_s = 600.0;
  cfg.record_schedule = true;
  std::vector<Wss*> instances(8, nullptr);
  const ThreadedResult real = run_threaded(cfg, wss_spawn(instances));
  ASSERT_TRUE(real.completed);
  ASSERT_FALSE(real.schedule.records.empty());

  // Export → import: the replay consumes exactly what the JSON carries.
  std::ostringstream os;
  write_schedule(os, real.schedule);
  RecordedSchedule imported;
  std::string error;
  ASSERT_TRUE(read_schedule(os.str(), imported, error)) << error;

  auto replay_report = [&imported](std::uint64_t* matched,
                                   std::uint64_t* missed) {
    SimSpec spec;
    spec.params = imported.params;
    spec.kind = imported.kind;
    spec.seed = imported.seed;
    auto adversary = std::make_shared<ReplayAdversary>(imported);
    auto sim = make_sim(spec, adversary);
    std::vector<Wss*> inst;
    WssOptions opts;
    opts.num_secrets = 1;
    for (int i = 0; i < sim->n(); ++i) {
      inst.push_back(&sim->party(i).spawn<Wss>("wss", 0, 0, opts, nullptr));
    }
    inst[0]->start(fixed_row0s(sim->params().ts));
    const RunStatus status = sim->run();
    EXPECT_EQ(status, RunStatus::quiescent);
    for (int i = 0; i < sim->n(); ++i) {
      EXPECT_EQ(inst[static_cast<std::size_t>(i)]->outcome(),
                WssOutcome::rows);
    }
    if (matched != nullptr) *matched = adversary->matched();
    if (missed != nullptr) *missed = adversary->missed();
    std::ostringstream report;
    obs::write_run_report(report, *sim, status, nullptr);
    return report.str();
  };

  std::uint64_t matched = 0;
  std::uint64_t missed = 0;
  const std::string first = replay_report(&matched, &missed);
  const std::string second = replay_report(nullptr, nullptr);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "replay is not deterministic";
  EXPECT_GT(matched, 0u);
  // The replayed execution's send pattern tracks the recorded one closely
  // for an honest run; misses only come from divergence tails.
  EXPECT_GT(matched, missed);
}

}  // namespace
}  // namespace nampc

// Cross-check: the Ideal primitive mode (DESIGN.md substitution #3) must be
// observationally equivalent to the Full implementations — same protocol
// outputs, same decisions — across the sharing stack and agreement layers.
// (Virtual times differ slightly; the *values* must not.)
#include <gtest/gtest.h>

#include "acs/acs.h"
#include "sharing/vss.h"
#include "sim_helpers.h"

namespace nampc {
namespace {

using testing::make_sim;
using testing::SimSpec;

struct XCase {
  NetworkKind kind;
  std::uint64_t seed;
};

class CrossCheckTest : public ::testing::TestWithParam<XCase> {};

TEST_P(CrossCheckTest, BaDecisionsAgreeAcrossModes) {
  const auto& c = GetParam();
  const ProtocolParams p{7, 2, 1};
  std::vector<bool> decisions;
  for (bool ideal : {false, true}) {
    auto sim = make_sim(
        {.params = p, .kind = c.kind, .seed = c.seed, .ideal = ideal});
    std::vector<Ba*> inst;
    for (int i = 0; i < p.n; ++i) {
      inst.push_back(&sim->party(i).spawn<Ba>("ba", 0, nullptr));
    }
    // Mixed-but-majority-1 inputs: both modes must decide the same way in
    // the synchronous network (where the BC layer fixes the plurality).
    for (int i = 0; i < p.n; ++i) {
      inst[static_cast<std::size_t>(i)]->start(i < 5);
    }
    EXPECT_EQ(sim->run(), RunStatus::quiescent);
    ASSERT_TRUE(inst[0]->has_output());
    decisions.push_back(inst[0]->output());
    for (Ba* b : inst) EXPECT_EQ(b->output(), decisions.back());
  }
  if (c.kind == NetworkKind::synchronous) {
    EXPECT_EQ(decisions[0], decisions[1]);
  }
}

TEST_P(CrossCheckTest, WssSharesAgreeAcrossModes) {
  const auto& c = GetParam();
  const ProtocolParams p{7, 2, 1};
  std::vector<FpVec> all_shares;
  for (bool ideal : {false, true}) {
    auto sim = make_sim(
        {.params = p, .kind = c.kind, .seed = c.seed, .ideal = ideal});
    std::vector<Wss*> inst;
    WssOptions opts;
    for (int i = 0; i < p.n; ++i) {
      inst.push_back(&sim->party(i).spawn<Wss>("wss", 0, 0, opts, nullptr));
    }
    Rng rng(c.seed);  // same dealer polynomial in both modes
    const Polynomial q = Polynomial::random_with_constant(Fp(42), p.ts, rng);
    inst[0]->start({q});
    EXPECT_EQ(sim->run(), RunStatus::quiescent);
    FpVec shares;
    for (int i = 0; i < p.n; ++i) {
      Wss* w = inst[static_cast<std::size_t>(i)];
      EXPECT_EQ(w->outcome(), WssOutcome::rows);
      shares.push_back(w->share(0));
    }
    all_shares.push_back(std::move(shares));
  }
  // Honest dealer: both modes must deliver exactly q's evaluations — hence
  // identical shares mode-to-mode.
  EXPECT_EQ(all_shares[0], all_shares[1]);
}

TEST_P(CrossCheckTest, VssSharesAgreeAcrossModes) {
  const auto& c = GetParam();
  const ProtocolParams p{5, 1, 1};
  std::vector<FpVec> all_shares;
  for (bool ideal : {false, true}) {
    auto sim = make_sim(
        {.params = p, .kind = c.kind, .seed = c.seed, .ideal = ideal});
    std::vector<Vss*> inst;
    for (int i = 0; i < p.n; ++i) {
      inst.push_back(
          &sim->party(i).spawn<Vss>("vss", 0, 0, 1, PartySet{}, nullptr));
    }
    Rng rng(c.seed ^ 1);
    const Polynomial q = Polynomial::random_with_constant(Fp(77), p.ts, rng);
    inst[0]->start({q});
    EXPECT_EQ(sim->run(), RunStatus::quiescent);
    FpVec shares;
    for (int i = 0; i < p.n; ++i) {
      Vss* v = inst[static_cast<std::size_t>(i)];
      EXPECT_EQ(v->outcome(), WssOutcome::rows);
      shares.push_back(v->share(0));
    }
    all_shares.push_back(std::move(shares));
  }
  EXPECT_EQ(all_shares[0], all_shares[1]);
}

TEST_P(CrossCheckTest, AcsSetsAgreeAcrossModes) {
  const auto& c = GetParam();
  const ProtocolParams p{7, 2, 1};
  std::vector<PartySet> outputs;
  for (bool ideal : {false, true}) {
    auto sim = make_sim(
        {.params = p, .kind = c.kind, .seed = c.seed, .ideal = ideal});
    std::vector<Acs*> inst;
    for (int i = 0; i < p.n; ++i) {
      inst.push_back(&sim->party(i).spawn<Acs>("acs", 0, nullptr));
    }
    for (Acs* a : inst) {
      for (int j = 0; j < p.n; ++j) a->mark(j);
    }
    EXPECT_EQ(sim->run(), RunStatus::quiescent);
    ASSERT_TRUE(inst[0]->has_output());
    outputs.push_back(inst[0]->output());
  }
  if (c.kind == NetworkKind::synchronous) {
    // All marked at onset in sync: both modes agree on the full set.
    EXPECT_EQ(outputs[0], outputs[1]);
    EXPECT_EQ(outputs[0], PartySet::full(p.n));
  } else {
    EXPECT_GE(outputs[0].size(), p.n - p.ts);
    EXPECT_GE(outputs[1].size(), p.n - p.ts);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Networks, CrossCheckTest,
    ::testing::Values(XCase{NetworkKind::synchronous, 501},
                      XCase{NetworkKind::synchronous, 502},
                      XCase{NetworkKind::asynchronous, 503}));

}  // namespace
}  // namespace nampc

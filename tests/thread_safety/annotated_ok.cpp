// Compiler-engine fixture: a correctly annotated shared-state class. Must
// compile cleanly under `clang -fsyntax-only -Wthread-safety
// -Werror=thread-safety` (registered as a CTest when the configured
// compiler is Clang; see tests/CMakeLists.txt). Companion of
// wrong_mutex_mutant.cpp, which differs only in which mutex bump() takes
// and must FAIL the same invocation — together they prove the capability
// analysis is actually armed, not vacuously passing.
#include <deque>

#include "util/thread_safety.h"

namespace {

class Tally {
 public:
  void bump() NAMPC_EXCLUDES(mu_) {
    const nampc::MutexLock lock(mu_);
    ++counter_;
    pending_.push_back(counter_);
  }

  [[nodiscard]] int read() NAMPC_EXCLUDES(mu_) {
    const nampc::MutexLock lock(mu_);
    return counter_;
  }

  void drain() NAMPC_EXCLUDES(mu_) {
    nampc::MutexLock lock(mu_);
    cv_.wait(mu_, [this]() NAMPC_NO_THREAD_SAFETY_ANALYSIS {
      return !pending_.empty();
    });
    pending_.clear();
  }

  void signal() NAMPC_EXCLUDES(mu_) {
    { const nampc::MutexLock lock(mu_); }
    cv_.notify_all();
  }

 private:
  nampc::Mutex mu_;
  nampc::CondVar cv_;
  int counter_ NAMPC_GUARDED_BY(mu_) = 0;
  std::deque<int> pending_ NAMPC_GUARDED_BY(mu_);
};

}  // namespace

int main() {
  Tally tally;
  tally.bump();
  tally.signal();
  return tally.read() == 1 ? 0 : 1;
}

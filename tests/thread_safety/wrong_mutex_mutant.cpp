// Compiler-engine mutant: counter_ is declared guarded by mu_a_, but
// bump() takes mu_b_. Under `clang -fsyntax-only -Wthread-safety
// -Werror=thread-safety` this must FAIL to compile (the CTest registers it
// WILL_FAIL; see tests/CMakeLists.txt) — proving the -Werror gate really
// catches the guarded-by-wrong-mutex bug class, the one TSan only finds
// when the racing interleaving actually fires.
#include "util/thread_safety.h"

namespace {

class Tally {
 public:
  void bump() NAMPC_EXCLUDES(mu_a_, mu_b_) {
    const nampc::MutexLock lock(mu_b_);  // wrong lock: counter_ needs mu_a_
    ++counter_;
  }

 private:
  nampc::Mutex mu_a_;
  nampc::Mutex mu_b_;
  int counter_ NAMPC_GUARDED_BY(mu_a_) = 0;
};

}  // namespace

int main() {
  Tally tally;
  tally.bump();
  return 0;
}

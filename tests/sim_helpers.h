// Shared helpers for protocol tests: simulation construction, common
// adversaries, and monitored simulations (invariant monitors attached).
#pragma once

#include <memory>

#include "adversary/scripted.h"
#include "net/simulation.h"
#include "obs/monitor.h"

namespace nampc::testing {

struct SimSpec {
  ProtocolParams params{4, 1, 0};
  NetworkKind kind = NetworkKind::synchronous;
  std::uint64_t seed = 7;
  bool ideal = false;
  bool local_coins = false;
  Time delta = 10;
  /// Violation tests run deliberately-infeasible parameter points (small n
  /// with over-budget corruption) to make attacks land; skips the
  /// Theorem 1.1 feasibility check and the privacy-audit assert.
  bool allow_infeasible = false;
  bool privacy_audit = true;
};

inline std::unique_ptr<Simulation> make_sim(
    const SimSpec& spec,
    std::shared_ptr<Adversary> adversary = nullptr) {
  Simulation::Config cfg;
  cfg.params = spec.params;
  cfg.kind = spec.kind;
  cfg.delta = spec.delta;
  cfg.seed = spec.seed;
  cfg.ideal_primitives = spec.ideal;
  cfg.local_coins = spec.local_coins;
  cfg.allow_infeasible = spec.allow_infeasible;
  cfg.privacy_audit = spec.privacy_audit;
  if (!adversary) adversary = std::make_shared<Adversary>();
  return std::make_unique<Simulation>(cfg, std::move(adversary));
}

/// A simulation with the standard invariant monitors attached. The engine
/// is heap-allocated and declared before the simulation so it outlives it
/// (at_quiescence fires inside Simulation::run; monitors must also survive
/// any instance destructors).
struct MonitoredSim {
  std::unique_ptr<obs::MonitorEngine> monitors;
  std::unique_ptr<Simulation> sim;

  Simulation& operator*() { return *sim; }
  Simulation* operator->() { return sim.get(); }
};

inline MonitoredSim make_monitored_sim(
    const SimSpec& spec,
    std::shared_ptr<Adversary> adversary = nullptr) {
  MonitoredSim ms;
  ms.monitors = std::make_unique<obs::MonitorEngine>();
  obs::install_standard_monitors(*ms.monitors);
  ms.sim = make_sim(spec, std::move(adversary));
  ms.sim->set_monitors(ms.monitors.get());
  return ms;
}

/// Canonical parameter points from DESIGN.md §4.
inline ProtocolParams p4_1_0() { return {4, 1, 0}; }
inline ProtocolParams p5_1_1() { return {5, 1, 1}; }
inline ProtocolParams p7_2_1() { return {7, 2, 1}; }
inline ProtocolParams p10_3_1() { return {10, 3, 1}; }

}  // namespace nampc::testing

// Shared helpers for protocol tests: simulation construction and common
// adversaries.
#pragma once

#include <memory>

#include "adversary/scripted.h"
#include "net/simulation.h"

namespace nampc::testing {

struct SimSpec {
  ProtocolParams params{4, 1, 0};
  NetworkKind kind = NetworkKind::synchronous;
  std::uint64_t seed = 7;
  bool ideal = false;
  bool local_coins = false;
  Time delta = 10;
};

inline std::unique_ptr<Simulation> make_sim(
    const SimSpec& spec,
    std::shared_ptr<Adversary> adversary = nullptr) {
  Simulation::Config cfg;
  cfg.params = spec.params;
  cfg.kind = spec.kind;
  cfg.delta = spec.delta;
  cfg.seed = spec.seed;
  cfg.ideal_primitives = spec.ideal;
  cfg.local_coins = spec.local_coins;
  if (!adversary) adversary = std::make_shared<Adversary>();
  return std::make_unique<Simulation>(cfg, std::move(adversary));
}

/// Canonical parameter points from DESIGN.md §4.
inline ProtocolParams p4_1_0() { return {4, 1, 0}; }
inline ProtocolParams p5_1_1() { return {5, 1, 1}; }
inline ProtocolParams p7_2_1() { return {7, 2, 1}; }
inline ProtocolParams p10_3_1() { return {10, 3, 1}; }

}  // namespace nampc::testing

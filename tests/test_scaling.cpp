// Scaling-engine invariants: the payload pool recycles without aliasing,
// instance-id interning is stable, the batched RS encode and dealer row
// caches are bit-identical to the per-point paths they replace, the
// incremental Star repair preserves matching maximality on random NOK
// sequences, and the scaling sweep is byte-deterministic serial vs parallel.
#include <gtest/gtest.h>

#include "graph/star_incremental.h"
#include "net/simulation.h"
#include "poly/batch_eval.h"
#include "rs/rs_encode.h"
#include "sharing/wss.h"
#include "util/sweep.h"

namespace nampc {
namespace {

Simulation::Config small_config() {
  Simulation::Config cfg;
  cfg.params = {4, 1, 0};
  cfg.seed = 7;
  return cfg;
}

TEST(PayloadPool, RecycleThenReuse) {
  Simulation sim(small_config(), std::make_shared<Adversary>());
  const Words src{1, 2, 3, 4};

  // Empty pool: the copy allocates (a miss).
  Words a = sim.pooled_copy(src);
  EXPECT_EQ(a, src);
  EXPECT_EQ(sim.metrics().payload_pool_misses, 1u);
  EXPECT_EQ(sim.metrics().payload_pool_hits, 0u);

  // A delivered buffer goes back; the next copy is served from the pool.
  sim.recycle_payload(std::move(a));
  EXPECT_EQ(sim.metrics().payloads_recycled, 1u);
  const Words other{9, 8};
  Words b = sim.pooled_copy(other);
  EXPECT_EQ(b, other);
  EXPECT_EQ(sim.metrics().payload_pool_hits, 1u);

  // The pooled buffer is a copy, not an alias.
  b[0] = 42;
  EXPECT_EQ(other[0], 9u);
}

TEST(PayloadPool, ZeroCapacityBuffersAreNotPooled) {
  Simulation sim(small_config(), std::make_shared<Adversary>());
  sim.recycle_payload(Words{});
  EXPECT_EQ(sim.metrics().payloads_recycled, 0u);
}

TEST(InstanceInterning, StableDenseIds) {
  Simulation sim(small_config(), std::make_shared<Adversary>());
  const std::uint32_t a = sim.intern_instance("wss/it0/pub");
  const std::uint32_t b = sim.intern_instance("wss/it0/r0");
  EXPECT_NE(a, b);
  EXPECT_EQ(sim.intern_instance("wss/it0/pub"), a);
  EXPECT_EQ(sim.instance_name(a), "wss/it0/pub");
  EXPECT_EQ(sim.instance_name(b), "wss/it0/r0");
  // Names keep stable addresses as the table grows (Message carries the
  // pointer): intern many more and re-check the first.
  const std::string* addr = &sim.instance_name(a);
  for (int i = 0; i < 200; ++i) {
    (void)sim.intern_instance("grow/" + std::to_string(i));
  }
  EXPECT_EQ(addr, &sim.instance_name(a));
}

TEST(BatchedEncode, BitIdenticalToPerPointEval) {
  Rng rng(101);
  const int n = 32;
  const int d = 10;
  std::vector<Polynomial> polys;
  for (int k = 0; k < 12; ++k) {
    polys.push_back(Polynomial::random_with_constant(
        Fp(rng.next_below(Fp::kPrime)), d, rng));
  }
  polys.emplace_back();  // zero polynomial rides along
  FpGrid grid;
  rs_encode_batch(polys, n, d, grid);
  ASSERT_EQ(grid.rows(), polys.size());
  ASSERT_EQ(grid.cols(), static_cast<std::size_t>(n));
  for (std::size_t k = 0; k < polys.size(); ++k) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(grid.at(k, static_cast<std::size_t>(j)),
                polys[k].eval(eval_point(j)))
          << "poly " << k << " point " << j;
    }
  }
  // Single-codeword entry point agrees too.
  const FpVec code = rs_encode(polys[0], n);
  for (int j = 0; j < n; ++j) {
    EXPECT_EQ(code[static_cast<std::size_t>(j)],
              polys[0].eval(eval_point(j)));
  }
}

TEST(BatchedEncode, RowFamilyMatchesPerPartyRows) {
  Rng rng(202);
  const int n = 64;
  const SymBivariate f = SymBivariate::random_with_secret(Fp(77), 21, rng);
  const std::vector<Polynomial> family = f.rows_for_parties(n);
  ASSERT_EQ(family.size(), static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const Polynomial per = f.row_for_party(j);
    EXPECT_EQ(family[static_cast<std::size_t>(j)].coeffs(), per.coeffs())
        << "row " << j;
  }
  // The dealer's committed-point grid identity: encoding the family gives
  // grid.at(i, j) = row_i(α_{j+1}) = F(α_{j+1}, α_{i+1}), symmetric.
  FpGrid grid;
  rs_encode_batch(family, n, 21, grid);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(grid.at(static_cast<std::size_t>(i),
                        static_cast<std::size_t>(j)),
                f.eval(eval_point(j), eval_point(i)));
    }
  }
}

TEST(BatchedEncode, VandermondeCacheHits) {
  BatchEval& cache = BatchEval::local();
  cache.clear();
  Rng rng(303);
  const Polynomial p =
      Polynomial::random_with_constant(Fp(5), 7, rng);
  FpVec out;
  cache.eval_at_parties(p, 16, out);
  const std::uint64_t misses = cache.misses();
  cache.eval_at_parties(p, 16, out);
  EXPECT_EQ(cache.misses(), misses);  // same (n, width) geometry: a hit
  EXPECT_GE(cache.hits(), 1u);
}

/// (C, D) validity per Protocol 4.2: C ⊆ D, size bounds, and every C x D
/// pair is a consistency edge. Holds for any maximum matching, so both the
/// from-scratch and the incrementally repaired finder must satisfy it.
void expect_valid_star(const Graph& g, const StarResult& s, int t) {
  const int n = g.size();
  EXPECT_TRUE(s.c.subset_of(s.d));
  EXPECT_GE(s.c.size(), n - 2 * t);
  EXPECT_GE(s.d.size(), n - t);
  for (int c : s.c.to_vector()) {
    for (int d : s.d.to_vector()) {
      if (c != d) EXPECT_TRUE(g.has_edge(c, d)) << c << "," << d;
    }
  }
}

TEST(IncrementalStar, RandomNokSequencesStayMaximum) {
  Rng rng(404);
  for (const int n : {8, 13, 21}) {
    const int t = (n - 1) / 4;
    std::vector<std::pair<int, int>> arrivals;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) arrivals.emplace_back(i, j);
    }
    for (std::size_t i = arrivals.size(); i-- > 1;) {
      std::swap(arrivals[i], arrivals[rng.next_below(i + 1)]);
    }
    StarFinder inc(n, t);
    Graph g(n);
    for (const auto& [u, v] : arrivals) {
      g.add_edge(u, v);
      inc.add_edge(u, v);
      // The decremental repair must keep a maximum matching: same size as
      // a from-scratch solve of the same complement.
      StarFinder scratch;
      scratch.load(g, t);
      ASSERT_EQ(inc.matching_size(), scratch.matching_size())
          << "n=" << n << " after edge " << u << "-" << v;
      const auto star = inc.find();
      if (star.has_value()) expect_valid_star(g, *star, t);
      // Full graph at the end: the star must exist (the complete graph is
      // an n-clique).
    }
    const auto final_star = inc.find();
    ASSERT_TRUE(final_star.has_value());
    EXPECT_EQ(final_star->c.size(), n);
    EXPECT_EQ(inc.matching_size(), 0);
  }
}

TEST(IncrementalStar, SyncToCatchesUpToSnapshot) {
  Rng rng(505);
  const int n = 16;
  const int t = 4;
  Graph g(n);
  StarFinder inc(n, t);
  for (int step = 0; step < 40; ++step) {
    const int u = static_cast<int>(rng.next_below(n));
    const int v = static_cast<int>(rng.next_below(n));
    if (u != v) g.add_edge(u, v);
    if (step % 7 == 0) inc.sync_to(g);  // batched catch-up mid-stream
  }
  inc.sync_to(g);
  StarFinder scratch;
  scratch.load(g, t);
  EXPECT_EQ(inc.matching_size(), scratch.matching_size());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(inc.graph().neighbors(i).mask(), g.neighbors(i).mask());
  }
}

TEST(ScalingSweep, SerialEqualsParallelAtN32) {
  struct Cell {
    int with_rows = 0;
    Time latest = -1;
    std::uint64_t messages = 0;
    std::uint64_t words = 0;
    std::uint64_t events = 0;
  };
  auto run_cell = [](NetworkKind kind) {
    Simulation::Config cfg;
    cfg.params = {32, 10, 5};
    cfg.kind = kind;
    cfg.seed = 611;
    Simulation sim(cfg, std::make_shared<Adversary>());
    std::vector<Wss*> inst;
    for (int i = 0; i < 32; ++i) {
      inst.push_back(&sim.party(i).spawn<Wss>("wss", 0, 0, WssOptions{},
                                              nullptr));
    }
    Rng rng(612);
    inst[0]->start({Polynomial::random_with_constant(Fp(99), 10, rng)});
    (void)sim.run();
    Cell c;
    for (Wss* w : inst) {
      if (w->outcome() == WssOutcome::rows) {
        ++c.with_rows;
        c.latest = std::max(c.latest, w->output_time());
      }
    }
    c.messages = sim.metrics().messages_sent;
    c.words = sim.metrics().words_sent;
    c.events = sim.metrics().events_processed;
    return c;
  };
  auto sweep_with = [&run_cell](int jobs) {
    Sweep<Cell> sweep(jobs);
    for (NetworkKind k :
         {NetworkKind::synchronous, NetworkKind::asynchronous}) {
      sweep.add([&run_cell, k] { return run_cell(k); });
    }
    return sweep.run();
  };
  const auto serial = sweep_with(1);
  const auto parallel = sweep_with(3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].with_rows, parallel[i].with_rows);
    EXPECT_EQ(serial[i].latest, parallel[i].latest);
    EXPECT_EQ(serial[i].messages, parallel[i].messages);
    EXPECT_EQ(serial[i].words, parallel[i].words);
    EXPECT_EQ(serial[i].events, parallel[i].events);
  }
  EXPECT_EQ(serial[0].with_rows, 32);
}

TEST(ScalingWss, PoolAndGridActiveOnFullRun) {
  // A full n=16 WSS run exercises the send_all pooled fan-out, the row
  // grid and the dealer caches; the allocation counters must move and the
  // outcome must be unanimous rows.
  Simulation::Config cfg;
  cfg.params = {16, 5, 2};
  cfg.seed = 713;
  Simulation sim(cfg, std::make_shared<Adversary>());
  std::vector<Wss*> inst;
  for (int i = 0; i < 16; ++i) {
    inst.push_back(
        &sim.party(i).spawn<Wss>("wss", 0, 0, WssOptions{}, nullptr));
  }
  Rng rng(714);
  inst[0]->start({Polynomial::random_with_constant(Fp(21), 5, rng)});
  (void)sim.run();
  for (Wss* w : inst) EXPECT_EQ(w->outcome(), WssOutcome::rows);
  if (!scaling_baseline()) {
    EXPECT_GT(sim.metrics().payloads_recycled, 0u);
    EXPECT_GT(sim.metrics().payload_pool_hits, 0u);
  }
  EXPECT_GT(sim.metrics().peak_queue_depth, 0u);
  // Pairwise consistency across the cached-evaluation paths.
  for (int i = 0; i < 16; ++i) {
    for (int j = i + 1; j < 16; ++j) {
      EXPECT_EQ(inst[static_cast<std::size_t>(i)]->point_for(0, j),
                inst[static_cast<std::size_t>(j)]->point_for(0, i));
    }
  }
}

}  // namespace
}  // namespace nampc

// Unit + property tests: Reed-Solomon simultaneous error correction and
// detection (§3.5, Theorem 3.2, Corollaries 3.3/3.4 — the basis of Table 1).
#include <gtest/gtest.h>

#include "rs/linalg.h"
#include "rs/reed_solomon.h"

namespace nampc {
namespace {

std::vector<RsPoint> codeword(const Polynomial& f, int n_points) {
  std::vector<RsPoint> pts;
  for (int i = 1; i <= n_points; ++i) {
    const Fp x(static_cast<std::uint64_t>(i));
    pts.push_back({x, f.eval(x)});
  }
  return pts;
}

void corrupt_positions(std::vector<RsPoint>& pts, std::vector<int> positions) {
  for (int p : positions) {
    pts[static_cast<std::size_t>(p)].y += Fp(1 + static_cast<std::uint64_t>(p));
  }
}

TEST(Linalg, SolvesConsistentSystem) {
  // x + y = 3, x - y = 1 -> x=2, y=1.
  FpMatrix a{{Fp(1), Fp(1)}, {Fp(1), Fp::from_int(-1)}};
  FpVec b{Fp(3), Fp(1)};
  const auto x = solve_linear(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], Fp(2));
  EXPECT_EQ((*x)[1], Fp(1));
}

TEST(Linalg, DetectsInconsistentSystem) {
  FpMatrix a{{Fp(1), Fp(1)}, {Fp(2), Fp(2)}};
  FpVec b{Fp(3), Fp(7)};
  EXPECT_FALSE(solve_linear(a, b).has_value());
}

TEST(Linalg, UnderdeterminedPicksSomeSolution) {
  FpMatrix a{{Fp(1), Fp(1), Fp(0)}};
  FpVec b{Fp(5)};
  const auto x = solve_linear(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0] + (*x)[1], Fp(5));
}

TEST(Rs, DecodeNoErrors) {
  Rng rng(31);
  const Polynomial f = Polynomial::random_with_constant(Fp(99), 3, rng);
  auto pts = codeword(f, 10);
  const auto res = rs_decode(pts, 3, 2);
  ASSERT_EQ(res.status, RsStatus::ok);
  EXPECT_EQ(res.poly, f);
  EXPECT_EQ(res.distance, 0);
}

TEST(Rs, CorrectsUpToEErrors) {
  Rng rng(32);
  for (int e = 1; e <= 3; ++e) {
    const Polynomial f = Polynomial::random_with_constant(Fp(7), 4, rng);
    auto pts = codeword(f, 4 + 2 * e + 1);
    std::vector<int> bad;
    for (int i = 0; i < e; ++i) bad.push_back(2 * i);
    corrupt_positions(pts, bad);
    const auto res = rs_decode(pts, 4, e);
    ASSERT_EQ(res.status, RsStatus::ok) << "e=" << e;
    EXPECT_EQ(res.poly, f);
    EXPECT_EQ(res.distance, e);
  }
}

TEST(Rs, DetectsMoreThanEErrors) {
  Rng rng(33);
  const int k = 3;
  const int e = 2;
  // e' = 2; N - k - 1 >= 2e + e' -> N >= 3 + 1 + 6 = 10.
  const Polynomial f = Polynomial::random_with_constant(Fp(1), k, rng);
  auto pts = codeword(f, 10);
  corrupt_positions(pts, {0, 3, 5, 7});  // e < 4 <= e + e'
  const auto res = rs_decode(pts, k, e);
  EXPECT_EQ(res.status, RsStatus::detected);
}

TEST(Rs, NeverMiscorrectsWithinDetectionBudget) {
  // Property sweep: for all s <= e + e', the decoder either returns the true
  // polynomial (s <= e) or reports detection — never a wrong polynomial.
  Rng rng(34);
  const int k = 2;
  for (int e = 0; e <= 3; ++e) {
    for (int ep = 0; ep <= 3; ++ep) {
      const int n_points = k + 1 + 2 * e + ep;
      for (int s = 0; s <= e + ep; ++s) {
        const Polynomial f = Polynomial::random_with_constant(
            Fp(rng.next_below(1000)), k, rng);
        auto pts = codeword(f, n_points);
        std::vector<int> bad;
        for (int i = 0; i < s; ++i) bad.push_back(i);
        corrupt_positions(pts, bad);
        const auto res = rs_decode(pts, k, e);
        if (s <= e) {
          ASSERT_EQ(res.status, RsStatus::ok)
              << "e=" << e << " e'=" << ep << " s=" << s;
          EXPECT_EQ(res.poly, f);
        } else {
          EXPECT_EQ(res.status, RsStatus::detected)
              << "e=" << e << " e'=" << ep << " s=" << s;
        }
      }
    }
  }
}

TEST(Rs, RejectsTooFewPoints) {
  Rng rng(35);
  const Polynomial f = Polynomial::random_with_constant(Fp(1), 3, rng);
  auto pts = codeword(f, 5);
  EXPECT_THROW((void)rs_decode(pts, 3, 1), InvariantError);
}

// --- The scheduled decoder behind Table 1 -------------------------------

struct ScheduleCase {
  int ts;
  int ta;
  int x;        // points received = ts + ta + 1 + x
  int errors;   // actual corrupted points
  bool expect_ok;
};

class RsScheduleTest : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(RsScheduleTest, MatchesTable1) {
  const auto& c = GetParam();
  Rng rng(36 + static_cast<std::uint64_t>(c.x * 100 + c.errors));
  const Polynomial f =
      Polynomial::random_with_constant(Fp(5), c.ts, rng);
  const int m = c.ts + c.ta + 1 + c.x;
  auto pts = codeword(f, m);
  std::vector<int> bad;
  for (int i = 0; i < c.errors; ++i) bad.push_back(i);
  corrupt_positions(pts, bad);
  const auto sched = rs_decode_scheduled(pts, c.ts, c.ta);
  // The schedule itself follows Corollaries 3.3/3.4.
  if (c.x <= c.ta) {
    EXPECT_EQ(sched.e, c.x);
    EXPECT_EQ(sched.e_detect, c.ta - c.x);
  } else {
    EXPECT_EQ(sched.e, c.ta);
    EXPECT_EQ(sched.e_detect, c.x - c.ta);
  }
  if (c.expect_ok) {
    ASSERT_EQ(sched.result.status, RsStatus::ok);
    EXPECT_EQ(sched.result.poly, f);
  } else {
    EXPECT_EQ(sched.result.status, RsStatus::detected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1Rows, RsScheduleTest,
    ::testing::Values(
        // ts=2, ta=1 (n=7 canonical point). m = 4 + x.
        ScheduleCase{2, 1, 0, 0, true},    // row 1: correct 0, detect 1
        ScheduleCase{2, 1, 0, 1, false},   // 1 error with x=0 -> detect
        ScheduleCase{2, 1, 1, 1, true},    // row ts+2ta+1: correct ta
        ScheduleCase{2, 1, 2, 1, true},    // x>ta: corrects ta errors
        ScheduleCase{2, 1, 2, 2, false},   // x>ta with too many errors
        // ts=3, ta=2 (sweep point). m = 6 + x.
        ScheduleCase{3, 2, 0, 0, true},
        ScheduleCase{3, 2, 1, 1, true},
        ScheduleCase{3, 2, 1, 2, false},
        ScheduleCase{3, 2, 2, 2, true},
        ScheduleCase{3, 2, 3, 2, true},
        ScheduleCase{3, 2, 3, 3, false}));

}  // namespace
}  // namespace nampc

// Hardening tests: decoder fuzzing (malformed payloads must throw
// DecodeError, never crash or mis-parse), API misuse checks, and Beaver
// property sweeps over random values.
#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "graph/graph.h"
#include "poly/polynomial.h"
#include "sharing/encoding.h"
#include "sharing/wss.h"
#include "sim_helpers.h"
#include "triples/beaver.h"

namespace nampc {
namespace {

using testing::make_sim;

TEST(DecoderFuzz, GraphDecodeNeverCrashes) {
  Rng rng(9001);
  int ok = 0;
  int rejected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Words w;
    const std::uint64_t len = rng.next_below(12);
    for (std::uint64_t i = 0; i < len; ++i) {
      // Mix plausible small values and raw garbage.
      w.push_back(rng.next_bool() ? rng.next_below(32) : rng.next_u64());
    }
    Reader r(w);
    try {
      const Graph g = Graph::decode(r);
      EXPECT_LE(g.size(), 24);
      ++ok;
    } catch (const DecodeError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, 2000);
  EXPECT_GT(rejected, 0);  // garbage is mostly rejected
}

TEST(DecoderFuzz, PolynomialDecodeNeverCrashes) {
  Rng rng(9002);
  for (int trial = 0; trial < 2000; ++trial) {
    Words w;
    const std::uint64_t len = rng.next_below(8);
    for (std::uint64_t i = 0; i < len; ++i) w.push_back(rng.next_u64());
    Reader r(w);
    try {
      (void)Polynomial::decode(r);
    } catch (const DecodeError&) {
    }
  }
  SUCCEED();
}

TEST(DecoderFuzz, REntryDecodeNeverCrashes) {
  Rng rng(9003);
  for (int trial = 0; trial < 2000; ++trial) {
    Words w;
    const std::uint64_t len = rng.next_below(6);
    for (std::uint64_t i = 0; i < len; ++i) {
      w.push_back(rng.next_below(8));
    }
    Reader r(w);
    try {
      (void)REntry::decode(r, 2);
    } catch (const DecodeError&) {
    }
  }
  SUCCEED();
}

TEST(ApiMisuse, CircuitRejectsBadWires) {
  Circuit c;
  const int a = c.input(0);
  EXPECT_THROW((void)c.add(a, 99), InvariantError);
  EXPECT_THROW((void)c.mul(-1, a), InvariantError);
  EXPECT_THROW(c.mark_output(42), InvariantError);
  EXPECT_THROW(c.mark_output(a, -5), InvariantError);
}

TEST(ApiMisuse, MissingInputsDefaultToZeroInPlainEval) {
  Circuit c;
  const int a = c.input(0);
  const int b = c.input(5);  // party 5 provides nothing below
  c.mark_output(c.add(a, b));
  const FpVec out = c.eval_plain({{0, {Fp(7)}}});
  EXPECT_EQ(out[0], Fp(7));
}

TEST(ApiMisuse, SubsetEnumerationEdgeCases) {
  int count = 0;
  PartySet::for_each_subset(3, 3, [&](PartySet s) {
    EXPECT_EQ(s, PartySet::full(3));
    ++count;
  });
  EXPECT_EQ(count, 1);
  count = 0;
  PartySet::for_each_subset(3, 4, [&](PartySet) { ++count; });
  EXPECT_EQ(count, 0);  // k > n: no subsets
}

TEST(ApiMisuse, WssRejectsOversizedInput) {
  auto sim = make_sim({.params = testing::p7_2_1()});
  WssOptions opts;
  auto& w = sim->party(0).spawn<Wss>("w", 0, 0, opts, nullptr);
  Rng rng(1);
  // Degree too high for ts = 2.
  EXPECT_THROW(w.start({Polynomial::random_with_constant(Fp(1), 5, rng)}),
               InvariantError);
  // Wrong batch width.
  EXPECT_THROW(w.start({Polynomial::constant(Fp(1)),
                        Polynomial::constant(Fp(2))}),
               InvariantError);
}

class BeaverSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BeaverSweep, RandomValuesMultiplyCorrectly) {
  const std::uint64_t seed = GetParam();
  const ProtocolParams p{7, 2, 1};
  Rng vals(seed);
  const Fp x(vals.next_below(Fp::kPrime));
  const Fp y(vals.next_below(Fp::kPrime));
  const Fp a(vals.next_below(Fp::kPrime));
  const Fp b(vals.next_below(Fp::kPrime));
  auto share = [&](Fp v) {
    const Polynomial f = Polynomial::random_with_constant(v, p.ts, vals);
    FpVec s;
    for (int i = 0; i < p.n; ++i) s.push_back(f.eval(eval_point(i)));
    return s;
  };
  const FpVec xs = share(x), ys = share(y), as = share(a), bs = share(b),
              cs = share(a * b);
  auto sim = make_sim({.params = p,
                       .kind = seed % 2 == 0 ? NetworkKind::synchronous
                                             : NetworkKind::asynchronous,
                       .seed = seed});
  std::vector<Beaver*> inst;
  for (int i = 0; i < p.n; ++i) {
    inst.push_back(&sim->party(i).spawn<Beaver>("bv", 1, nullptr));
    TripleShares t;
    t.a = {as[static_cast<std::size_t>(i)]};
    t.b = {bs[static_cast<std::size_t>(i)]};
    t.c = {cs[static_cast<std::size_t>(i)]};
    inst.back()->start({xs[static_cast<std::size_t>(i)]},
                       {ys[static_cast<std::size_t>(i)]}, t);
  }
  ASSERT_EQ(sim->run(), RunStatus::quiescent);
  FpVec px, py;
  for (int i = 0; i < p.n; ++i) {
    px.push_back(eval_point(i));
    py.push_back(inst[static_cast<std::size_t>(i)]->z_shares()[0]);
  }
  const Polynomial f = Polynomial::interpolate(px, py);
  EXPECT_LE(f.degree(), p.ts);
  EXPECT_EQ(f.eval(Fp(0)), x * y);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeaverSweep,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

}  // namespace
}  // namespace nampc

// Observability layer tests: tracer spans vs Metrics, Chrome-trace and
// run-report JSON validity, same-seed determinism, structured-log sinks,
// ring-buffer forensics and the quiescence privacy audit.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mpc/mpc.h"
#include "obs/analysis.h"
#include "obs/monitor.h"
#include "obs/report.h"
#include "obs/tracer.h"
#include "sharing/wss.h"
#include "sim_helpers.h"

namespace nampc {
namespace {

using testing::make_sim;
using testing::SimSpec;

// ------------------------------------------------------------------------
// Minimal JSON parser — validation only. The library itself is write-only
// (util/json.h), so tests bring their own reader.

struct JsonValue {
  enum class Type { null, boolean, number, string, array, object };
  Type type = Type::null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  [[nodiscard]] const JsonValue& at(const std::string& k) const {
    static const JsonValue missing;
    const auto it = obj.find(k);
    return it == obj.end() ? missing : it->second;
  }
  [[nodiscard]] bool has(const std::string& k) const {
    return obj.count(k) > 0;
  }
  [[nodiscard]] std::int64_t as_int() const {
    return static_cast<std::int64_t>(num);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    const bool ok = value(out);
    skip_ws();
    return ok && pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool lit(const char* word, JsonValue& v, JsonValue::Type t, bool b) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    v.type = t;
    v.b = b;
    return true;
  }
  bool string_token(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char c = s_[pos_ + 1];
        switch (c) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 5 >= s_.size()) return false;
            out += '?';  // tests never check escaped content
            pos_ += 4;
            break;
          default: return false;
        }
        pos_ += 2;
      } else {
        out += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool value(JsonValue& v) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == 'n') return lit("null", v, JsonValue::Type::null, false);
    if (c == 't') return lit("true", v, JsonValue::Type::boolean, true);
    if (c == 'f') return lit("false", v, JsonValue::Type::boolean, false);
    if (c == '"') {
      v.type = JsonValue::Type::string;
      return string_token(v.str);
    }
    if (c == '{') {
      ++pos_;
      v.type = JsonValue::Type::object;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
      while (true) {
        skip_ws();
        std::string key;
        if (!string_token(key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') return false;
        ++pos_;
        JsonValue member;
        if (!value(member)) return false;
        v.obj.emplace(std::move(key), std::move(member));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') { ++pos_; continue; }
        if (s_[pos_] == '}') { ++pos_; return true; }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      v.type = JsonValue::Type::array;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
      while (true) {
        JsonValue elem;
        if (!value(elem)) return false;
        v.arr.push_back(std::move(elem));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') { ++pos_; continue; }
        if (s_[pos_] == ']') { ++pos_; return true; }
        return false;
      }
    }
    // number
    const std::size_t start = pos_;
    if (s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    v.type = JsonValue::Type::number;
    v.num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool parse_json(const std::string& text, JsonValue& out) {
  return JsonParser(text).parse(out);
}

// ------------------------------------------------------------------------
// Restores the global Log configuration after a test body mutated it.

struct LogStateGuard {
  LogLevel level = Log::level();
  std::map<std::string, LogLevel> modules = Log::module_levels();
  ~LogStateGuard() {
    Log::level() = level;
    Log::module_levels() = modules;
    Log::set_sink(Log::text_sink(std::cerr));
    Log::set_ring(0);
  }
};

// Full MPC run with a tracer attached; shared by several tests.
struct TracedRun {
  Circuit circuit;
  obs::Tracer tracer;  // must outlive the Simulation
  std::unique_ptr<Simulation> sim;
  RunStatus status = RunStatus::quiescent;
  std::string trace_json;
  std::string report_json;

  explicit TracedRun(std::uint64_t seed) {
    const int n = 4;
    std::vector<int> in;
    for (int i = 0; i < n; ++i) in.push_back(circuit.input(i));
    int acc = in[0];
    for (int i = 1; i < n; ++i) acc = circuit.add(acc, in[static_cast<std::size_t>(i)]);
    circuit.mark_output(circuit.mul(acc, in[0]));

    sim = make_sim({.params = {4, 1, 0}, .seed = seed});
    sim->set_tracer(&tracer);
    for (int i = 0; i < n; ++i) {
      sim->party(i).spawn<Mpc>("mpc", circuit,
                               FpVec{Fp(static_cast<std::uint64_t>(i + 1))},
                               nullptr);
    }
    status = sim->run();

    std::ostringstream t;
    tracer.write_chrome_trace(t);
    trace_json = t.str();
    std::ostringstream r;
    obs::write_run_report(r, *sim, status, &tracer);
    report_json = r.str();
  }
};

// ------------------------------------------------------------------------

TEST(Obs, TraceSpanKindsMatchMetricsCounters) {
  TracedRun run(/*seed=*/21);
  ASSERT_EQ(run.status, RunStatus::quiescent);
  const Metrics& m = run.sim->metrics();
  EXPECT_GT(m.bc_instances, 0u);
  EXPECT_GT(m.wss_instances, 0u);
  EXPECT_GT(m.vss_instances, 0u);
  EXPECT_EQ(run.tracer.kind_count("bc"), m.bc_instances);
  EXPECT_EQ(run.tracer.kind_count("wss"), m.wss_instances);
  EXPECT_EQ(run.tracer.kind_count("vss"), m.vss_instances);
  EXPECT_EQ(run.tracer.kind_count("mpc"), 4u);
}

TEST(Obs, ChromeTraceParsesAndCoversAllParties) {
  TracedRun run(/*seed=*/22);
  JsonValue trace;
  ASSERT_TRUE(parse_json(run.trace_json, trace)) << run.trace_json.substr(0, 200);
  ASSERT_TRUE(trace.has("traceEvents"));
  const auto& events = trace.at("traceEvents").arr;
  ASSERT_FALSE(events.empty());
  std::map<std::string, int> by_ph;
  std::map<int, int> spans_by_party;
  for (const JsonValue& e : events) {
    by_ph[e.at("ph").str]++;
    if (e.at("ph").str == "X") {
      spans_by_party[static_cast<int>(e.at("pid").num)]++;
      EXPECT_GE(e.at("dur").num, 0.0);
    }
  }
  EXPECT_GT(by_ph["X"], 0);   // duration spans
  EXPECT_GT(by_ph["M"], 0);   // process-name metadata
  EXPECT_GT(by_ph["s"], 0);   // flow starts (message sends)
  EXPECT_EQ(by_ph["s"], by_ph["f"]);
  for (int p = 0; p < 4; ++p) {
    EXPECT_GT(spans_by_party[p], 0) << "party " << p << " has no spans";
  }
}

TEST(Obs, RunReportParsesAndMirrorsMetrics) {
  TracedRun run(/*seed=*/23);
  JsonValue report;
  ASSERT_TRUE(parse_json(run.report_json, report))
      << run.report_json.substr(0, 200);
  EXPECT_EQ(report.at("schema").str, "nampc-run-report/3");
  EXPECT_EQ(report.at("status").str, "quiescent");
  EXPECT_EQ(report.at("config").at("n").as_int(), 4);
  EXPECT_EQ(report.at("config").at("seed").as_int(), 23);

  const Metrics& m = run.sim->metrics();
  const auto& metrics = report.at("metrics");
  EXPECT_EQ(metrics.at("messages_sent").as_int(),
            static_cast<std::int64_t>(m.messages_sent));
  EXPECT_EQ(metrics.at("events_processed").as_int(),
            static_cast<std::int64_t>(m.events_processed));

  // Acceptance check: per-primitive span counts equal the Metrics counters.
  const auto& prim = report.at("primitives");
  ASSERT_TRUE(prim.has("bc"));
  ASSERT_TRUE(prim.has("wss"));
  ASSERT_TRUE(prim.has("vss"));
  EXPECT_EQ(prim.at("bc").at("count").as_int(),
            static_cast<std::int64_t>(m.bc_instances));
  EXPECT_EQ(prim.at("wss").at("count").as_int(),
            static_cast<std::int64_t>(m.wss_instances));
  EXPECT_EQ(prim.at("vss").at("count").as_int(),
            static_cast<std::int64_t>(m.vss_instances));
  // Completed primitives report latency percentiles in virtual time.
  EXPECT_GE(prim.at("bc").at("latency").at("p50").num, 0.0);
}

TEST(Obs, SameSeedRunsAreBitIdentical) {
  TracedRun a(/*seed=*/31);
  TracedRun b(/*seed=*/31);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.report_json, b.report_json);
  EXPECT_EQ(a.sim->metrics().messages_sent, b.sim->metrics().messages_sent);
  EXPECT_EQ(a.sim->metrics().events_processed,
            b.sim->metrics().events_processed);
  // A different seed must still parse but may differ.
  TracedRun c(/*seed=*/32);
  JsonValue v;
  EXPECT_TRUE(parse_json(c.trace_json, v));
}

TEST(Obs, SubtreeAggregationIsMonotone) {
  TracedRun run(/*seed=*/24);
  const auto agg = run.tracer.aggregate_subtrees();
  const auto& spans = run.tracer.spans();
  ASSERT_EQ(agg.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    // Subtree totals include the span's own counts...
    EXPECT_GE(agg[i].messages, spans[i].messages_sent);
    EXPECT_GE(agg[i].words, spans[i].words_sent);
    // ...and roll up into the parent.
    if (spans[i].parent >= 0) {
      EXPECT_GE(agg[static_cast<std::size_t>(spans[i].parent)].messages,
                agg[i].messages);
    }
  }
}

TEST(Obs, RingBufferDumpFiresOnEventLimit) {
  LogStateGuard guard;
  Log::set_ring(64, LogLevel::trace);

  Simulation::Config cfg;
  cfg.params = {4, 1, 0};
  cfg.seed = 5;
  cfg.max_events = 200;  // trip mid-protocol
  auto sim = std::make_unique<Simulation>(cfg, std::make_shared<Adversary>());
  WssOptions opts;
  std::vector<Wss*> inst;
  for (int i = 0; i < 4; ++i) {
    inst.push_back(&sim->party(i).spawn<Wss>("w", 0, 0, opts, nullptr));
  }
  Rng rng(5);
  inst[0]->start({Polynomial::random_with_constant(Fp(7), 1, rng)});

  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  const RunStatus status = sim->run();
  std::cerr.rdbuf(old);

  EXPECT_EQ(status, RunStatus::event_limit);
  EXPECT_NE(captured.str().find("event limit"), std::string::npos)
      << captured.str();
  EXPECT_NE(captured.str().find("log events"), std::string::npos)
      << "expected a ring dump, got: " << captured.str();
}

TEST(Obs, AssertionFailureDumpsRing) {
  LogStateGuard guard;
  Log::set_ring(8, LogLevel::trace);
  NAMPC_LOG(trace) << "breadcrumb before the failure";

  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  EXPECT_THROW(NAMPC_ASSERT(1 == 2, "forced failure"), InvariantError);
  std::cerr.rdbuf(old);
  EXPECT_NE(captured.str().find("breadcrumb before the failure"),
            std::string::npos)
      << captured.str();
}

TEST(Obs, PrivacyAuditFailsLoudlyAtQuiescence) {
  auto sim = make_sim({.params = {4, 1, 0}});
  sim->metrics().honest_polys_revealed[0] = 2;  // ts = 1: bound violated
  EXPECT_THROW((void)sim->run(), InvariantError);

  // An in-bound count passes.
  auto ok = make_sim({.params = {4, 1, 0}});
  ok->metrics().honest_polys_revealed[0] = 1;
  EXPECT_EQ(ok->run(), RunStatus::quiescent);
}

TEST(Obs, PrivacyAuditHoldsOnRealRuns) {
  // The audit runs inside Simulation::run() for every test in the suite;
  // this test additionally checks the recorded per-dealer maxima directly.
  TracedRun run(/*seed=*/25);
  ASSERT_EQ(run.status, RunStatus::quiescent);
  for (const auto& [dealer, worst] : run.sim->metrics().honest_polys_revealed) {
    EXPECT_LE(worst, 1u) << "dealer " << dealer;  // ts = 1 in TracedRun
  }
}

TEST(Obs, JsonLinesSinkEmitsParseableRecords) {
  LogStateGuard guard;
  std::ostringstream out;
  Log::use_json_sink(out);
  Log::level() = LogLevel::trace;

  auto sim = make_sim({.params = {4, 1, 0}, .seed = 9});
  WssOptions opts;
  std::vector<Wss*> inst;
  for (int i = 0; i < 4; ++i) {
    inst.push_back(&sim->party(i).spawn<Wss>("w", 0, 0, opts, nullptr));
  }
  Rng rng(9);
  inst[0]->start({Polynomial::random_with_constant(Fp(3), 1, rng)});
  EXPECT_EQ(sim->run(), RunStatus::quiescent);

  std::istringstream lines(out.str());
  std::string line;
  int records = 0;
  int with_context = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    JsonValue v;
    ASSERT_TRUE(parse_json(line, v)) << line;
    EXPECT_TRUE(v.has("level"));
    EXPECT_TRUE(v.has("msg"));
    ++records;
    if (v.has("t") && v.has("party") && v.has("module")) ++with_context;
  }
  EXPECT_GT(records, 0);
  EXPECT_GT(with_context, 0) << "NAMPC_PLOG context fields missing";
}

TEST(Obs, ModuleLevelFiltersOverrideGlobalLevel) {
  LogStateGuard guard;
  Log::level() = LogLevel::error;
  Log::set_module_level("wss", LogLevel::trace);
  EXPECT_TRUE(Log::enabled_for("wss", LogLevel::trace));
  EXPECT_FALSE(Log::enabled_for("bc", LogLevel::trace));
  EXPECT_TRUE(Log::enabled_for("bc", LogLevel::error));

  Log::set_module_level("wss", LogLevel::off);
  EXPECT_FALSE(Log::enabled_for("wss", LogLevel::error));
}

TEST(Obs, TracerDisabledIsInert) {
  // No tracer attached: the hook sites are null-checked, the run behaves
  // identically in metrics to a traced run with the same seed.
  TracedRun traced(/*seed=*/41);

  Circuit c = traced.circuit;
  auto sim = make_sim({.params = {4, 1, 0}, .seed = 41});
  for (int i = 0; i < 4; ++i) {
    sim->party(i).spawn<Mpc>("mpc", c,
                             FpVec{Fp(static_cast<std::uint64_t>(i + 1))},
                             nullptr);
  }
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  EXPECT_EQ(sim->metrics().messages_sent, traced.sim->metrics().messages_sent);
  EXPECT_EQ(sim->metrics().events_processed,
            traced.sim->metrics().events_processed);
}

// ------------------------------------------------------------------------
// Trace analysis (obs/analysis.h): JSON round-trip, critical-path causality,
// budget checking and trace diffing over a real traced run.

TEST(ObsAnalysis, TraceRoundTripsThroughJson) {
  TracedRun run(/*seed=*/41);
  const obs::TraceData data =
      obs::collect_trace(run.tracer, *run.sim, run.status);
  std::ostringstream os;
  obs::write_trace(os, data);

  obs::TraceData back;
  std::string error;
  ASSERT_TRUE(obs::load_trace(os.str(), back, error)) << error;
  EXPECT_EQ(back.info.params.n, data.info.params.n);
  EXPECT_EQ(back.info.seed, data.info.seed);
  EXPECT_EQ(back.info.status, "quiescent");
  ASSERT_EQ(back.spans.size(), data.spans.size());
  ASSERT_EQ(back.flows.size(), data.flows.size());
  for (std::size_t i = 0; i < data.spans.size(); ++i) {
    EXPECT_EQ(back.spans[i].key, data.spans[i].key);
    EXPECT_EQ(back.spans[i].done, data.spans[i].done);
    EXPECT_EQ(back.spans[i].nominal, data.spans[i].nominal);
    EXPECT_EQ(back.spans[i].kinds, data.spans[i].kinds);
  }
  // A garbage document and a wrong schema both fail cleanly.
  obs::TraceData junk;
  EXPECT_FALSE(obs::load_trace("{not json", junk, error));
  EXPECT_FALSE(obs::load_trace("{\"schema\":\"nampc-trace/999\"}", junk, error));
}

TEST(ObsAnalysis, CriticalPathIsCausalAndEndsAtSpanDone) {
  TracedRun run(/*seed=*/42);
  const obs::TraceData data =
      obs::collect_trace(run.tracer, *run.sim, run.status);
  const int idx = obs::find_done_span(data, "mpc");
  ASSERT_GE(idx, 0);
  const obs::TraceSpan& span = data.spans[static_cast<std::size_t>(idx)];
  const obs::CriticalPath cp = obs::critical_path(data, idx);
  ASSERT_FALSE(cp.hops.empty());
  // The chain ends where the span delivered, at the span's own party.
  EXPECT_EQ(cp.end, span.done);
  EXPECT_EQ(cp.hops.back().to, span.party);
  // Hops are causally ordered: each send happens at or after the previous
  // delivery (at the same party), and every hop takes positive time.
  for (std::size_t i = 0; i < cp.hops.size(); ++i) {
    EXPECT_GE(cp.hops[i].arrival, cp.hops[i].send);
    if (i > 0) {
      EXPECT_EQ(cp.hops[i].from, cp.hops[i - 1].to);
      EXPECT_GE(cp.hops[i].send, cp.hops[i - 1].arrival);
    }
  }
  EXPECT_EQ(cp.start, cp.hops.front().send);
  EXPECT_EQ(cp.local_time + cp.network_time, cp.end - cp.start);
}

TEST(ObsAnalysis, BudgetsHoldOnHonestSyncRun) {
  TracedRun run(/*seed=*/43);
  const obs::TraceData data =
      obs::collect_trace(run.tracer, *run.sim, run.status);
  const std::vector<obs::BudgetRow> rows = obs::check_budgets(data);
  ASSERT_FALSE(rows.empty());
  for (const obs::BudgetRow& row : rows) {
    EXPECT_TRUE(row.gated);  // synchronous trace: bounds are binding
    EXPECT_TRUE(row.within) << row.kind << ": observed " << row.observed_max
                            << " > bound " << row.bound;
    EXPECT_GT(row.done, 0u);
  }
}

TEST(ObsAnalysis, DiffOfIdenticalTracesIsEmpty) {
  TracedRun a(/*seed=*/44);
  TracedRun b(/*seed=*/44);
  const obs::TraceData da = obs::collect_trace(a.tracer, *a.sim, a.status);
  const obs::TraceData db = obs::collect_trace(b.tracer, *b.sim, b.status);
  EXPECT_TRUE(obs::diff_traces(da, db).empty());
  // A different seed shifts message timings, which the diff surfaces.
  TracedRun c(/*seed=*/45);
  const obs::TraceData dc = obs::collect_trace(c.tracer, *c.sim, c.status);
  const auto drift = obs::diff_traces(da, dc);
  for (const obs::KindDiff& d : drift) {
    EXPECT_EQ(d.count_a, d.count_b) << d.kind;  // same protocol structure
  }
}

TEST(ObsAnalysis, RunReportCarriesMonitorVerdict) {
  obs::MonitorEngine monitors;
  obs::install_standard_monitors(monitors);
  auto sim = make_sim({.params = {4, 1, 0}, .seed = 46});
  sim->set_monitors(&monitors);
  std::vector<Wss*> inst;
  WssOptions opts;
  for (int i = 0; i < 4; ++i) {
    inst.push_back(&sim->party(i).spawn<Wss>("w", 0, 0, opts, nullptr));
  }
  Rng rng(46);
  inst[0]->start({Polynomial::random_with_constant(Fp(3), 1, rng)});
  const RunStatus status = sim->run();
  ASSERT_EQ(status, RunStatus::quiescent);

  std::ostringstream os;
  obs::write_run_report(os, *sim, status, nullptr);
  JsonValue report;
  ASSERT_TRUE(parse_json(os.str(), report)) << os.str().substr(0, 200);
  ASSERT_TRUE(report.has("monitors"));
  const JsonValue& mon = report.at("monitors");
  EXPECT_TRUE(mon.at("ok").b);
  EXPECT_GT(mon.at("events").as_int(), 0);
  EXPECT_EQ(mon.at("attached").as_int(), 7);
  EXPECT_TRUE(mon.at("violations").arr.empty());
}

}  // namespace
}  // namespace nampc

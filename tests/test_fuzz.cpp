// The fuzzing engine's contracts (src/fuzz):
//  1. Seeded determinism — the same (options, seed) produce byte-identical
//     campaign reports, and jobs=1 == jobs=4 (submission-order merge).
//  2. Repro files — every sampled case round-trips through the
//     "nampc-fuzz-seed/1" JSON schema, and a replayed case renders the
//     byte-identical verdict block.
//  3. Shrinking — a failing case padded with irrelevant atoms shrinks to a
//     strictly smaller case that still fails.
//  4. Oracle soundness — honest-stack campaigns produce zero violations.
//  5. Rediscovery — the engine finds (a) the two-bivariate WSS dealer
//     mutant of tests/test_monitor.cpp and (b) the §5 lower-bound attack
//     at n = 2·max(ts,ta) + max(2ta,ts), from pinned base seeds.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/fuzz.h"

namespace nampc::fuzz {
namespace {

CampaignOptions opts(const std::string& primitive, std::uint64_t seed,
                     int campaigns, int jobs = 1) {
  CampaignOptions o;
  o.primitive = primitive;
  o.seed = seed;
  o.campaigns = campaigns;
  o.jobs = jobs;
  return o;
}

TEST(FuzzDeterminism, SameSeedSameReportBytes) {
  const CampaignOptions o = opts("lb", 1, 32);
  const CampaignReport a = run_campaigns(o);
  const CampaignReport b = run_campaigns(o);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.failures, b.failures);
  ASSERT_EQ(a.failing.size(), b.failing.size());
  for (std::size_t i = 0; i < a.failing.size(); ++i) {
    EXPECT_EQ(case_to_json(a.failing[i].fcase),
              case_to_json(b.failing[i].fcase));
  }
}

TEST(FuzzDeterminism, DifferentSeedsDifferentCases) {
  const FuzzCase a = sample_case(opts("wss", 1, 1), 0);
  const FuzzCase b = sample_case(opts("wss", 2, 1), 0);
  EXPECT_NE(case_to_json(a), case_to_json(b));
}

TEST(FuzzDeterminism, ParallelMatchesSerialBytes) {
  CampaignOptions serial = opts("lb", 1, 32, 1);
  CampaignOptions parallel = opts("lb", 1, 32, 4);
  EXPECT_EQ(run_campaigns(serial).text, run_campaigns(parallel).text);
}

TEST(FuzzJson, SampledCasesRoundTrip) {
  for (const std::string& primitive : primitive_targets()) {
    CampaignOptions o = opts(primitive, 3, 1);
    o.mutants = primitive == "wss";  // exercise every action kind
    for (std::uint64_t i = 0; i < 8; ++i) {
      const FuzzCase original = sample_case(o, i);
      const std::string json = case_to_json(original);
      FuzzCase parsed;
      std::string error;
      ASSERT_TRUE(read_case_json(json, parsed, error))
          << primitive << "[" << i << "]: " << error;
      EXPECT_EQ(json, case_to_json(parsed)) << primitive << "[" << i << "]";
    }
  }
}

TEST(FuzzJson, MalformedInputsRejected) {
  FuzzCase out;
  std::string error;
  EXPECT_FALSE(read_case_json("", out, error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(read_case_json("{\"schema\":\"other/9\"}", out, error));
  EXPECT_FALSE(read_case_json("{\"schema\":\"nampc-fuzz-seed/1\"}", out, error));
  EXPECT_FALSE(error.empty());
  // A structurally valid document with a bad action kind.
  const FuzzCase good = sample_case(opts("lb", 1, 1), 9);
  std::string json = case_to_json(good);
  const std::string from = "\"kind\":\"";
  const std::size_t at = json.find(from, json.find("\"actions\""));
  if (at != std::string::npos) {
    json.replace(at, from.size() + 1, from + "X");
    EXPECT_FALSE(read_case_json(json, out, error));
  }
}

TEST(FuzzReplay, VerdictBytesSurviveJsonRoundTrip) {
  // A campaign that fails (lb seed 1 finds several); replaying the JSON
  // repro must render the byte-identical verdict block.
  const CampaignReport report = run_campaigns(opts("lb", 1, 32));
  ASSERT_GT(report.failures, 0);
  const FuzzCase& original = report.failing[0].fcase;
  const std::string rendered =
      render_verdict(original, report.failing[0].verdict);
  FuzzCase replayed;
  std::string error;
  ASSERT_TRUE(read_case_json(case_to_json(original), replayed, error)) << error;
  EXPECT_EQ(rendered, render_verdict(replayed, run_case(replayed)));
}

TEST(FuzzShrink, StrictlySmallerStillFailing) {
  const CampaignReport report = run_campaigns(opts("lb", 1, 32));
  ASSERT_GT(report.failures, 0);
  // Pad a known-failing case with atoms that cannot matter (silence of an
  // already-partitioned edge, a delay activating after the horizon).
  FuzzCase padded = report.failing[0].fcase;
  const std::size_t minimal_floor = padded.strategy.actions.size();
  StrategyAction extra;
  extra.kind = StrategyAction::Kind::silence;
  extra.party = 2;
  extra.key = "no-such-instance";
  padded.strategy.actions.push_back(extra);
  extra.kind = StrategyAction::Kind::delay;
  extra.party = -1;
  extra.key.clear();
  extra.from_time = kFarFuture / 2;
  extra.delay = 1;
  padded.strategy.actions.push_back(extra);
  ASSERT_TRUE(run_case(padded).failed());

  int steps = 0;
  const FuzzCase reduced = shrink_case(padded, &steps);
  EXPECT_GE(steps, 2);
  EXPECT_LT(reduced.strategy.actions.size(), padded.strategy.actions.size());
  EXPECT_LE(reduced.strategy.actions.size(), minimal_floor);
  EXPECT_TRUE(run_case(reduced).failed());
}

TEST(FuzzShrink, NonFailingCaseReturnedUnchanged) {
  FuzzCase quiet;
  quiet.primitive = "acast";
  quiet.params = {4, 1, 0};
  int steps = -1;
  const FuzzCase same = shrink_case(quiet, &steps);
  EXPECT_EQ(steps, 0);
  EXPECT_EQ(case_to_json(quiet), case_to_json(same));
}

TEST(FuzzOracle, HonestStackProducesNoViolations) {
  for (const std::string& primitive :
       {std::string("acast"), std::string("bc"), std::string("ba"),
        std::string("acs")}) {
    const CampaignReport report = run_campaigns(opts(primitive, 11, 12));
    EXPECT_EQ(report.failures, 0) << primitive << ":\n" << report.text;
    EXPECT_GT(report.total_checks, 0u) << primitive;
  }
  for (const std::string& primitive :
       {std::string("wss"), std::string("vss"), std::string("mpc")}) {
    const CampaignReport report = run_campaigns(opts(primitive, 11, 4));
    EXPECT_EQ(report.failures, 0) << primitive << ":\n" << report.text;
    EXPECT_GT(report.total_checks, 0u) << primitive;
  }
}

TEST(FuzzRediscovery, FindsWssTwoBivariateDealerMutant) {
  CampaignOptions o = opts("wss", 1, 32);
  o.mutants = true;
  const CampaignReport report = run_campaigns(o);
  ASSERT_GT(report.failures, 0) << report.text;
  bool commitment_break = false;
  for (const CampaignResult& r : report.failing) {
    for (const obs::Violation& v : r.verdict.violations) {
      commitment_break |= v.monitor == "sharing" &&
                          v.detail.find("inconsistent") != std::string::npos;
    }
  }
  EXPECT_TRUE(commitment_break) << report.text;
}

TEST(FuzzRediscovery, FindsSection5LowerBoundAttack) {
  // n = 2·max(ts,ta) + max(2ta,ts) with ts = ta = 1: the infeasible
  // boundary of Theorem 5.1. The MPC output-agreement monitor is the
  // oracle that recognises the P1/P2 disagreement.
  const CampaignReport report = run_campaigns(opts("lb", 1, 64));
  ASSERT_GT(report.failures, 0) << report.text;
  bool disagreement = false;
  for (const CampaignResult& r : report.failing) {
    for (const obs::Violation& v : r.verdict.violations) {
      disagreement |= v.monitor == "mpc" &&
                      v.detail.find("different output") != std::string::npos;
    }
  }
  EXPECT_TRUE(disagreement) << report.text;
}

}  // namespace
}  // namespace nampc::fuzz

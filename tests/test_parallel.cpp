// The sweep engine's determinism contract and the hot-path kernel caches.
//
// Three claims are locked down here:
//  1. ThreadPool/Sweep mechanics: jobs all run, results merge in submission
//     order, exceptions rethrow in submission order, --jobs parsing works.
//  2. Serial == parallel: the same job list run with jobs=1 and jobs=4
//     produces identical results — including a full BenchReport rendered to
//     JSON, byte for byte. This is what makes `--jobs N` safe for the
//     committed BENCH_*.json trajectory.
//  3. Cached == uncached: the thread-local interpolation cache and the
//     reusable Berlekamp-Welch workspace return bit-identical results to
//     the reference implementations, on random and adversarial inputs.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "bench_util.h"
#include "field/fp_batch.h"
#include "poly/interp_cache.h"
#include "rs/reed_solomon.h"
#include "sharing/wss.h"
#include "sim_helpers.h"
#include "util/sweep.h"
#include "util/thread_pool.h"

namespace nampc {
namespace {

using testing::make_sim;

TEST(ThreadPool, RunsEverySubmittedJob) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
    // The pool is reusable after wait_idle.
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

TEST(SweepEngine, MergesResultsInSubmissionOrder) {
  for (int jobs : {1, 2, 4, 8}) {
    Sweep<int> sweep(jobs);
    for (int i = 0; i < 64; ++i) {
      sweep.add([i] { return i * i; });
    }
    const std::vector<int> out = sweep.run();
    ASSERT_EQ(out.size(), 64u) << "jobs=" << jobs;
    for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(SweepEngine, RethrowsFirstExceptionInSubmissionOrder) {
  for (int jobs : {1, 4}) {
    Sweep<int> sweep(jobs);
    sweep.add([] { return 0; });
    sweep.add([]() -> int { throw std::runtime_error("second"); });
    sweep.add([]() -> int { throw std::runtime_error("third"); });
    try {
      (void)sweep.run();
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "second");
    }
  }
}

TEST(SweepEngine, CliJobsParsing) {
  auto jobs_of = [](std::vector<const char*> argv) {
    return sweep_cli_jobs(static_cast<int>(argv.size()),
                          const_cast<char**>(argv.data()));
  };
  EXPECT_EQ(jobs_of({"prog", "--jobs", "3"}), 3);
  EXPECT_EQ(jobs_of({"prog", "--jobs=5"}), 5);
  EXPECT_EQ(jobs_of({"prog", "-j", "2"}), 2);
  EXPECT_EQ(jobs_of({"prog", "-j7"}), 7);
  // Malformed / absent values fall back to the environment default.
  EXPECT_EQ(jobs_of({"prog", "--jobs", "zero"}), sweep_default_jobs());
  EXPECT_EQ(jobs_of({"prog"}), sweep_default_jobs());
}

/// One simulation cell of a miniature bench table: a WSS run whose metrics
/// go into a BenchReport. Used to prove serial == parallel byte-for-byte.
struct CellResult {
  bool ok = false;
  Time latest = -1;
  std::uint64_t messages = 0;
};

CellResult run_cell(NetworkKind kind, std::uint64_t seed) {
  const ProtocolParams p{4, 1, 0};
  auto sim = make_sim({.params = p, .kind = kind, .seed = seed});
  std::vector<Wss*> inst;
  WssOptions opts;
  for (int i = 0; i < p.n; ++i) {
    inst.push_back(&sim->party(i).spawn<Wss>("wss", 0, 0, opts, nullptr));
  }
  Rng rng(seed);
  inst[0]->start({Polynomial::random_with_constant(Fp(5), p.ts, rng)});
  CellResult r;
  r.ok = sim->run() == RunStatus::quiescent;
  for (Wss* w : inst) {
    if (w->outcome() == WssOutcome::rows) {
      r.latest = std::max(r.latest, w->output_time());
    } else {
      r.ok = false;
    }
  }
  r.messages = sim->metrics().messages_sent;
  return r;
}

std::string render_report(int jobs) {
  const std::vector<std::uint64_t> seeds = {21, 22, 23, 24, 25, 26};
  Sweep<CellResult> sweep(jobs);
  for (NetworkKind kind :
       {NetworkKind::synchronous, NetworkKind::asynchronous}) {
    for (std::uint64_t seed : seeds) {
      sweep.add([kind, seed] { return run_cell(kind, seed); });
    }
  }
  const std::vector<CellResult> cells = sweep.run();

  bench::BenchReport report("parallel_determinism_probe");
  bench::Table t({"network", "seed", "ok", "latest t", "messages"});
  std::size_t idx = 0;
  for (NetworkKind kind :
       {NetworkKind::synchronous, NetworkKind::asynchronous}) {
    for (std::uint64_t seed : seeds) {
      const CellResult& r = cells[idx++];
      t.row(kind == NetworkKind::synchronous ? "sync" : "async", seed,
            r.ok ? "yes" : "NO", r.latest, r.messages);
    }
  }
  report.add("probe", t);
  std::ostringstream os;
  report.write(os);
  return os.str();
}

TEST(SweepEngine, SerialAndParallelReportsAreByteIdentical) {
  const std::string serial = render_report(1);
  EXPECT_NE(serial.find("\"schema\":\"nampc-bench/2\""), std::string::npos);
  EXPECT_EQ(serial, render_report(2));
  EXPECT_EQ(serial, render_report(4));
  EXPECT_EQ(serial, render_report(hardware_threads()));
}

FpVec random_points(Rng& rng, std::size_t n) {
  // Distinct x values: shuffle-free construction via offset + index.
  FpVec xs;
  const std::uint64_t base = rng.next_below(1u << 20);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(Fp(base + 3 * i + 1));
  }
  return xs;
}

TEST(KernelCache, CachedLagrangeMatchesReference) {
  InterpCache::local().clear();
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = 2 + rng.next_below(9);
    const FpVec xs = random_points(rng, m);
    const Fp at(rng.next_below(Fp::kPrime));
    const FpVec reference = lagrange_coefficients(xs, at);
    // Twice: first call populates, second must hit the cache.
    EXPECT_EQ(lagrange_coefficients_cached(xs, at), reference);
    EXPECT_EQ(lagrange_coefficients_cached(xs, at), reference);
  }
  EXPECT_GT(InterpCache::local().hits(), 0u);
}

TEST(KernelCache, CachedInterpolationMatchesReference) {
  InterpCache::local().clear();
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = 2 + rng.next_below(9);
    const FpVec xs = random_points(rng, m);
    FpVec ys;
    for (std::size_t i = 0; i < m; ++i) ys.push_back(Fp(rng.next_below(Fp::kPrime)));
    const Polynomial reference = Polynomial::interpolate(xs, ys);
    EXPECT_EQ(interpolate_cached(xs, ys), reference);
    EXPECT_EQ(interpolate_cached(xs, ys), reference);
  }
  EXPECT_GT(InterpCache::local().hits(), 0u);
}

TEST(KernelCache, CacheSurvivesManyPointSetsWithoutDanglingReferences) {
  InterpCache::local().clear();
  Rng rng(7);
  // Push well past the trim threshold; every answer must stay correct.
  for (int trial = 0; trial < 2200; ++trial) {
    const FpVec xs = random_points(rng, 3);
    const Fp at(rng.next_below(Fp::kPrime));
    EXPECT_EQ(lagrange_coefficients_cached(xs, at),
              lagrange_coefficients(xs, at));
  }
}

TEST(KernelBatch, FpDotMatchesNaiveAccumulation) {
  Rng rng(42);
  for (std::size_t n : {0u, 1u, 62u, 63u, 64u, 200u}) {
    FpVec a, b;
    for (std::size_t i = 0; i < n; ++i) {
      a.push_back(Fp(rng.next_below(Fp::kPrime)));
      b.push_back(Fp(rng.next_below(Fp::kPrime)));
    }
    Fp naive(0);
    for (std::size_t i = 0; i < n; ++i) naive += a[i] * b[i];
    EXPECT_EQ(fp_dot(a, b), naive) << "n=" << n;
  }
}

TEST(KernelBatch, PowersAndEvalMatchHorner) {
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.next_below(12);
    FpVec coeffs;
    for (std::size_t i = 0; i < n; ++i) {
      coeffs.push_back(Fp(rng.next_below(Fp::kPrime)));
    }
    const Fp x(rng.next_below(Fp::kPrime));
    FpVec powers(n);
    fp_powers(x, powers.data(), n);
    Fp horner(0);
    for (std::size_t k = n; k-- > 0;) horner = horner * x + coeffs[k];
    EXPECT_EQ(fp_eval_with_powers(coeffs.data(), powers.data(), n), horner);
  }
}

/// Fresh-workspace reference decode: a brand-new RsDecoder per call, so no
/// buffer reuse can leak between decodes.
RsDecodeResult fresh_decode(const std::vector<RsPoint>& pts, int k, int e) {
  RsDecoder decoder;
  return decoder.decode(pts, k, e);
}

TEST(KernelCache, ReusedRsDecoderMatchesFreshDecoder) {
  Rng rng(77);
  RsDecoder& reused = RsDecoder::local();
  // Interleave shapes (m, k, e) so the workspace is repeatedly resized up
  // and down — exactly what a decode schedule does.
  for (int trial = 0; trial < 40; ++trial) {
    const int k = 1 + static_cast<int>(rng.next_below(4));
    const int e = static_cast<int>(rng.next_below(3));
    const int m = k + 2 * e + 1 + static_cast<int>(rng.next_below(3));
    const Polynomial f = Polynomial::random_with_constant(
        Fp(rng.next_below(Fp::kPrime)), k, rng);
    std::vector<RsPoint> pts;
    for (int i = 1; i <= m; ++i) {
      const Fp x(static_cast<std::uint64_t>(i));
      pts.push_back({x, f.eval(x)});
    }
    // Corrupt a rotating set of positions: sometimes <= e (correctable),
    // sometimes more (must detect) — both paths exercise the workspace.
    const int errors = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(e + 2)));
    for (int i = 0; i < errors; ++i) {
      const std::size_t at = (static_cast<std::size_t>(trial) + 2 * static_cast<std::size_t>(i)) % pts.size();
      pts[at].y += Fp(1 + static_cast<std::uint64_t>(i));
    }
    const RsDecodeResult a = reused.decode(pts, k, e);
    const RsDecodeResult b = fresh_decode(pts, k, e);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    EXPECT_EQ(a.distance, b.distance);
    if (a.status == RsStatus::ok) {
      EXPECT_EQ(a.poly, b.poly);
    }
  }
}

TEST(KernelCache, ScheduledDecodeAgreesAcrossAdversarialCodewords) {
  // The Corollary 3.3/3.4 schedule through the shared thread-local decoder
  // must agree with fresh decoding on garbled codewords too.
  Rng rng(177);
  const int ts = 2, ta = 1;
  for (int x = 0; x <= ts; ++x) {
    const int m = ts + ta + 1 + x;
    const int e = x <= ta ? x : ta;
    for (int trial = 0; trial < 10; ++trial) {
      const Polynomial f = Polynomial::random_with_constant(
          Fp(rng.next_below(Fp::kPrime)), ts, rng);
      std::vector<RsPoint> pts;
      for (int i = 1; i <= m; ++i) {
        const Fp xx(static_cast<std::uint64_t>(i));
        Fp y = f.eval(xx);
        if (i <= trial % (e + 2)) y += Fp(static_cast<std::uint64_t>(7 * i));
        pts.push_back({xx, y});
      }
      const ScheduledDecode sched = rs_decode_scheduled(pts, ts, ta);
      const RsDecodeResult ref = fresh_decode(pts, ts, sched.e);
      ASSERT_EQ(sched.result.status, ref.status) << "x=" << x;
      if (ref.status == RsStatus::ok) {
        EXPECT_EQ(sched.result.poly, ref.poly);
      }
    }
  }
}

}  // namespace
}  // namespace nampc

// Unit + property tests: matching, (n,t)-Star (Protocol 4.2), cliques.
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "util/rng.h"

namespace nampc {
namespace {

Graph random_graph(int n, double edge_prob, Rng& rng) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_below(1000) < static_cast<std::uint64_t>(edge_prob * 1000)) {
        g.add_edge(u, v);
      }
    }
  }
  return g;
}

/// Adds a clique over `members` to g.
void plant_clique(Graph& g, const PartySet& members) {
  const auto v = members.to_vector();
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (std::size_t j = i + 1; j < v.size(); ++j) {
      if (!g.has_edge(v[i], v[j])) g.add_edge(v[i], v[j]);
    }
  }
}

TEST(Graph, BasicOperations) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, ComplementInverts) {
  Rng rng(41);
  const Graph g = random_graph(8, 0.5, rng);
  const Graph gc = g.complement();
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      if (u == v) continue;
      EXPECT_NE(g.has_edge(u, v), gc.has_edge(u, v));
    }
  }
}

TEST(Graph, EdgesSubsetOf) {
  Graph a(4);
  a.add_edge(0, 1);
  Graph b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_TRUE(a.edges_subset_of(b));
  EXPECT_FALSE(b.edges_subset_of(a));
}

TEST(Graph, CodecRoundTrip) {
  Rng rng(42);
  const Graph g = random_graph(7, 0.4, rng);
  Writer w;
  g.encode(w);
  Words words = std::move(w).take();
  Reader r(words);
  EXPECT_EQ(Graph::decode(r), g);
}

bool is_valid_matching(const Graph& g,
                       const std::vector<std::pair<int, int>>& m) {
  PartySet used;
  for (const auto& [u, v] : m) {
    if (!g.has_edge(u, v)) return false;
    if (used.contains(u) || used.contains(v)) return false;
    used.insert(u);
    used.insert(v);
  }
  return true;
}

TEST(Matching, PerfectMatchingOnEvenCycle) {
  Graph g(6);
  for (int i = 0; i < 6; ++i) g.add_edge(i, (i + 1) % 6);
  const auto m = maximum_matching(g);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_EQ(m.size(), 3u);
}

TEST(Matching, OddCycleLeavesOneUnmatched) {
  Graph g(5);
  for (int i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5);
  const auto m = maximum_matching(g);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_EQ(m.size(), 2u);
}

TEST(Matching, BlossomCase) {
  // A triangle with a pendant on each corner: maximum matching = 3, which a
  // greedy matcher can miss.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(0, 3);
  g.add_edge(1, 4);
  g.add_edge(2, 5);
  const auto m = maximum_matching(g);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_EQ(m.size(), 3u);
}

TEST(Matching, EmptyGraph) {
  Graph g(4);
  EXPECT_TRUE(maximum_matching(g).empty());
}

TEST(Clique, FindsPlantedMaximumClique) {
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = random_graph(10, 0.3, rng);
    PartySet planted;
    while (planted.size() < 6) {
      planted.insert(static_cast<int>(rng.next_below(10)));
    }
    plant_clique(g, planted);
    const PartySet found = maximum_clique(g);
    EXPECT_GE(found.size(), 6);
    EXPECT_TRUE(g.is_clique(found));
  }
}

TEST(Clique, FindCliqueIncludingRespectsConstraints) {
  Rng rng(44);
  Graph g = random_graph(9, 0.2, rng);
  const PartySet planted = PartySet::of({0, 2, 4, 6, 8});
  plant_clique(g, planted);
  const auto q = find_clique_including(g, PartySet::of({0, 2}), 5);
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->contains(0));
  EXPECT_TRUE(q->contains(2));
  EXPECT_GE(q->size(), 5);
  EXPECT_TRUE(g.is_clique(*q));
  // Excluding a planted member still leaves a 4-clique, not a 5-clique
  // necessarily — ask only for what must exist.
  const auto q2 =
      find_clique_including(g, PartySet::of({0}), 4, PartySet::of({4}));
  ASSERT_TRUE(q2.has_value());
  EXPECT_FALSE(q2->contains(4));
}

TEST(Clique, ImpossibleTargetReturnsNullopt) {
  Graph g(5);
  g.add_edge(0, 1);
  EXPECT_FALSE(find_clique_including(g, {}, 3).has_value());
  // must_include not a clique.
  EXPECT_FALSE(find_clique_including(g, PartySet::of({0, 2}), 2).has_value());
}

// --- (n,t)-Star properties ----------------------------------------------

struct StarCase {
  int n;
  int t;
};

class StarTest : public ::testing::TestWithParam<StarCase> {};

TEST_P(StarTest, FindsStarWhenCliqueExists) {
  const auto [n, t] = GetParam();
  Rng rng(45 + static_cast<std::uint64_t>(n * 10 + t));
  int found_count = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Graph g = random_graph(n, 0.35, rng);
    // Plant a clique of size n - t (Canetti's premise).
    PartySet planted;
    for (int i = 0; i < n - t; ++i) planted.insert(i);
    plant_clique(g, planted);
    const auto star = find_star(g, t);
    if (star.has_value()) {
      ++found_count;
      EXPECT_GE(star->c.size(), n - 2 * t);
      EXPECT_GE(star->d.size(), n - t);
      EXPECT_TRUE(star->c.subset_of(star->d));
      for (int j : star->c.to_vector()) {
        for (int k : star->d.to_vector()) {
          if (j == k) continue;
          EXPECT_TRUE(g.has_edge(j, k))
              << "star violates C-D adjacency: " << j << "," << k;
        }
      }
      if (star->extended) {
        EXPECT_GE(star->e.size(), n - t);
        EXPECT_GE(star->f.size(), n - t);
      }
    }
  }
  // The core (C, D) star must be found whenever an n-t clique exists.
  EXPECT_EQ(found_count, 30);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StarTest,
                         ::testing::Values(StarCase{7, 1}, StarCase{10, 2},
                                           StarCase{13, 3}, StarCase{16, 4}));

TEST(Star, NoStarInSparseGraph) {
  // An empty graph has no (n,t)-star for t < n/3.
  Graph g(9);
  EXPECT_FALSE(find_star(g, 2).has_value());
}

TEST(Star, CompleteGraphGivesFullStar) {
  Graph g(7);
  for (int u = 0; u < 7; ++u) {
    for (int v = u + 1; v < 7; ++v) g.add_edge(u, v);
  }
  const auto star = find_star(g, 2);
  ASSERT_TRUE(star.has_value());
  EXPECT_EQ(star->c.size(), 7);
  EXPECT_EQ(star->d.size(), 7);
  EXPECT_TRUE(star->extended);
  EXPECT_EQ(star->f.size(), 7);
}

}  // namespace
}  // namespace nampc

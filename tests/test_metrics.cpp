// Cost-attribution profiler tests (obs/metrics.h): attribution sums match
// run totals exactly, the legacy Metrics struct is a view over the same
// accounting path, "nampc-metrics/1" dumps are byte-identical across sweep
// --jobs counts, series samples agree at shared Δvt boundaries, the flight
// recorder captures engineered event-limit trips, named instruments, and a
// (loose) wall-clock bound on the optional sampler/ring machinery.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sharing/wss.h"
#include "sim_helpers.h"
#include "util/sweep.h"

namespace nampc {
namespace {

using obs::InstanceCost;
using obs::MetricsRegistry;
using obs::MetricsSample;
using testing::p7_2_1;
using testing::SimSpec;

struct WssRun {
  std::unique_ptr<Simulation> sim;
  RunStatus status = RunStatus::quiescent;
};

/// Runs an honest-dealer WSS to completion (or to `max_events`) with the
/// metrics sampler at `dvt` (0 = sampler off).
WssRun run_wss(ProtocolParams p, NetworkKind kind, std::uint64_t seed,
               Time dvt, std::uint64_t max_events = 0,
               std::size_t ring = 256) {
  Simulation::Config cfg;
  cfg.params = p;
  cfg.kind = kind;
  cfg.seed = seed;
  if (max_events > 0) cfg.max_events = max_events;

  WssRun r;
  r.sim = std::make_unique<Simulation>(cfg, std::make_shared<Adversary>());
  if (dvt > 0) r.sim->metrics_registry().set_sample_interval(dvt);
  r.sim->metrics_registry().set_flight_ring(ring);

  std::vector<Wss*> inst;
  for (int i = 0; i < p.n; ++i) {
    inst.push_back(&r.sim->party(i).spawn<Wss>("wss", 0, 0, WssOptions{},
                                               nullptr));
  }
  Rng rng(seed ^ 0xfeed);
  inst[0]->start({Polynomial::random_with_constant(Fp(4242), p.ts, rng)});
  r.status = r.sim->run();
  return r;
}

InstanceCost sum_rows(const std::vector<InstanceCost>& rows) {
  InstanceCost s;
  for (const InstanceCost& c : rows) {
    s.events += c.events;
    s.timers += c.timers;
    s.messages += c.messages;
    s.words += c.words;
    s.pool_hits += c.pool_hits;
    s.pool_misses += c.pool_misses;
  }
  return s;
}

std::string metrics_jsonl(const Simulation& sim) {
  std::ostringstream os;
  obs::write_metrics_jsonl(os, sim);
  return os.str();
}

// Every event, message, word and pool action lands in exactly one instance
// cell (or the unattributed cell) and exactly one kind cell — the sums
// reproduce the run totals with no remainder, and the closing series
// sample equals the totals too.
TEST(MetricsRegistry, AttributionSumsToRunTotals) {
  for (NetworkKind kind :
       {NetworkKind::synchronous, NetworkKind::asynchronous}) {
    const WssRun r = run_wss(p7_2_1(), kind, 11, /*dvt=*/10);
    ASSERT_EQ(r.status, RunStatus::quiescent);
    const MetricsRegistry& reg = r.sim->metrics_registry();
    const Metrics& m = r.sim->metrics();
    ASSERT_GT(m.events_processed, 0u);
    ASSERT_GT(m.messages_sent, 0u);

    for (const std::vector<InstanceCost>* rows :
         {&reg.instance_rows(), &reg.kind_rows()}) {
      const InstanceCost s = sum_rows(*rows);
      EXPECT_EQ(s.events, m.events_processed);
      EXPECT_EQ(s.timers, reg.timers_total());
      EXPECT_EQ(s.messages, m.messages_sent);
      EXPECT_EQ(s.words, m.words_sent);
      EXPECT_EQ(s.pool_hits, m.payload_pool_hits);
      EXPECT_EQ(s.pool_misses, m.payload_pool_misses);
    }

    // Every send has a concrete sender, so the party dimension covers
    // messages/words exactly; timers scheduled outside any party keep the
    // party event coverage at <=.
    std::uint64_t p_events = 0, p_messages = 0, p_words = 0;
    for (const obs::PartyCost& p : reg.party_rows()) {
      p_events += p.events;
      p_messages += p.messages;
      p_words += p.words;
    }
    EXPECT_LE(p_events, m.events_processed);
    EXPECT_EQ(p_messages, m.messages_sent);
    EXPECT_EQ(p_words, m.words_sent);

    ASSERT_FALSE(reg.samples().empty());
    const MetricsSample& last = reg.samples().back();
    EXPECT_EQ(last.events, m.events_processed);
    EXPECT_EQ(last.messages, m.messages_sent);
    EXPECT_EQ(last.words, m.words_sent);
    EXPECT_GE(last.vt, r.sim->now());
  }
}

// Satellite 1: the Metrics struct is a compatibility view over the
// registry's accounting path — same object, and the registry's kind tags
// mirror the layered per-kind instance counters the struct still carries.
TEST(MetricsRegistry, CompatViewIsTheSameAccountingPath) {
  const WssRun r = run_wss(p7_2_1(), NetworkKind::synchronous, 3, 0);
  ASSERT_EQ(r.status, RunStatus::quiescent);
  const MetricsRegistry& reg = r.sim->metrics_registry();
  EXPECT_EQ(&reg.totals(), &r.sim->metrics());

  const std::vector<std::string>& kinds = reg.kind_names();
  std::uint64_t wss_tags = 0;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    if (kinds[k] == "wss") wss_tags = reg.kind_tags()[k];
  }
  EXPECT_EQ(wss_tags, r.sim->metrics().wss_instances);
}

// The committed-dump determinism contract: the JSONL bytes depend only on
// the run, never on how many sweep workers produced sibling cells.
TEST(MetricsRegistry, JsonlByteIdenticalAcrossSweepJobs) {
  const auto produce = [](std::size_t i) {
    const NetworkKind kind =
        i % 2 == 0 ? NetworkKind::synchronous : NetworkKind::asynchronous;
    const WssRun r = run_wss(p7_2_1(), kind, 100 + i, /*dvt=*/10);
    return metrics_jsonl(*r.sim);
  };
  const std::vector<std::string> serial = sweep_run(1, 4, produce);
  const std::vector<std::string> parallel = sweep_run(4, 4, produce);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
    EXPECT_FALSE(serial[i].empty());
  }
  // And a straight re-run of the same config is byte-identical as well.
  const WssRun a = run_wss(p7_2_1(), NetworkKind::asynchronous, 5, 10);
  const WssRun b = run_wss(p7_2_1(), NetworkKind::asynchronous, 5, 10);
  EXPECT_EQ(metrics_jsonl(*a.sim), metrics_jsonl(*b.sim));
}

// A sample at virtual time b captures the cumulative totals of everything
// dispatched strictly before b — so coarse and fine sampling schedules
// must agree wherever their boundaries coincide.
TEST(MetricsRegistry, SamplesAgreeAtSharedBoundariesAcrossIntervals) {
  const WssRun fine = run_wss(p7_2_1(), NetworkKind::synchronous, 9, 10);
  const WssRun coarse = run_wss(p7_2_1(), NetworkKind::synchronous, 9, 20);
  ASSERT_EQ(fine.status, RunStatus::quiescent);
  std::size_t matched = 0;
  for (const MetricsSample& c : coarse.sim->metrics_registry().samples()) {
    for (const MetricsSample& f : fine.sim->metrics_registry().samples()) {
      if (f.vt != c.vt) continue;
      ++matched;
      EXPECT_EQ(f.events, c.events) << "vt " << c.vt;
      EXPECT_EQ(f.timers, c.timers) << "vt " << c.vt;
      EXPECT_EQ(f.messages, c.messages) << "vt " << c.vt;
      EXPECT_EQ(f.words, c.words) << "vt " << c.vt;
    }
  }
  EXPECT_GT(matched, 1u);
}

// An engineered valve trip (tiny max_events) must leave a usable flight
// record: top instances sorted by cost, a coherent queue composition, and
// the ring of final dispatches in time order.
TEST(MetricsRegistry, FlightRecorderCapturesEngineeredValveTrip) {
  const WssRun r =
      run_wss(p7_2_1(), NetworkKind::synchronous, 17, /*dvt=*/10,
              /*max_events=*/200);
  ASSERT_EQ(r.status, RunStatus::event_limit);
  const MetricsRegistry& reg = r.sim->metrics_registry();
  ASSERT_TRUE(reg.flight().has_value());
  const obs::FlightRecord& rec = *reg.flight();
  EXPECT_EQ(rec.max_events, 200u);
  EXPECT_EQ(r.sim->metrics().events_processed, 200u);

  ASSERT_FALSE(rec.top.empty());
  std::uint64_t top_events = 0;
  for (std::size_t i = 0; i + 1 < rec.top.size(); ++i) {
    EXPECT_GE(rec.top[i].cost.events, rec.top[i + 1].cost.events);
  }
  for (const obs::FlightRecord::Top& t : rec.top) {
    top_events += t.cost.events;
    EXPECT_FALSE(t.key.empty());
  }
  EXPECT_LE(top_events, r.sim->metrics().events_processed);

  // A 200-event WSS run stops mid-protocol: work must still be pending,
  // and the klass breakdown must account for the whole queue.
  EXPECT_GT(rec.queue_depth, 0u);
  std::uint64_t by_klass = 0;
  for (const auto& [klass, count] : rec.queue_by_klass) by_klass += count;
  EXPECT_EQ(by_klass, rec.queue_depth);
  EXPECT_GE(rec.queue_horizon, rec.tripped_at);

  ASSERT_FALSE(rec.ring.empty());
  EXPECT_LE(rec.ring.size(), 256u);
  for (std::size_t i = 0; i + 1 < rec.ring.size(); ++i) {
    EXPECT_LE(rec.ring[i].vt, rec.ring[i + 1].vt);
  }
  EXPECT_EQ(rec.ring.back().vt, rec.tripped_at);

  std::ostringstream flight_json;
  EXPECT_TRUE(obs::write_flight_record(flight_json, *r.sim));
  EXPECT_NE(flight_json.str().find("\"schema\":\"nampc-flight/1\""),
            std::string::npos);
  std::ostringstream summary;
  obs::render_flight_summary(summary, rec);
  EXPECT_FALSE(summary.str().empty());

  // No trip, no record.
  const WssRun clean = run_wss(p7_2_1(), NetworkKind::synchronous, 17, 0);
  std::ostringstream none;
  EXPECT_FALSE(obs::write_flight_record(none, *clean.sim));
  EXPECT_TRUE(none.str().empty());
}

// The emitted JSONL keeps to the committed "nampc-metrics/1" shape: header
// first, one total row last, every line a single JSON object.
TEST(MetricsRegistry, JsonlSchemaShape) {
  const WssRun r = run_wss(p7_2_1(), NetworkKind::asynchronous, 23, 10);
  const std::string dump = metrics_jsonl(*r.sim);
  std::istringstream lines(dump);
  std::string line;
  std::vector<std::string> all;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    all.push_back(line);
  }
  ASSERT_GT(all.size(), 3u);
  EXPECT_NE(all.front().find("\"schema\":\"nampc-metrics/1\""),
            std::string::npos);
  EXPECT_NE(all.front().find("\"sample_dvt\":10"), std::string::npos);
  EXPECT_NE(all.back().find("\"row\":\"total\""), std::string::npos);
  for (std::size_t i = 1; i + 1 < all.size(); ++i) {
    EXPECT_NE(all[i].find("\"row\":\""), std::string::npos) << "line " << i;
  }
  // The per-kind attribution row for the protocol under test carries its
  // paper complexity term (docs/PAPER_MAP.md "Measured-cost fields").
  EXPECT_NE(dump.find("\"row\":\"kind\",\"kind\":\"wss\""), std::string::npos);
  EXPECT_NE(dump.find("\"paper_source\":\"Theorem 6.3 (Pi_WSS)\""),
            std::string::npos);
}

// Named generic instruments: ids are stable per name, counters can carry
// the instance dimension, gauges track maxima, histogram buckets follow
// bit_width bucketing.
TEST(MetricsRegistry, NamedInstruments) {
  EXPECT_EQ(MetricsRegistry::bucket_of(0), 0u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1), 1u);
  EXPECT_EQ(MetricsRegistry::bucket_of(2), 2u);
  EXPECT_EQ(MetricsRegistry::bucket_of(3), 2u);
  EXPECT_EQ(MetricsRegistry::bucket_of(4), 3u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1024), 11u);

  Metrics compat;
  MetricsRegistry reg;
  reg.bind(&compat, 4);
  const auto c = reg.counter("rs_decode_calls");
  EXPECT_EQ(reg.counter("rs_decode_calls"), c);  // same name, same id
  reg.add(c);
  reg.add(c, /*instance=*/7, /*by=*/2);
  const auto g = reg.gauge("active_instances");
  reg.gauge_max(g, 5);
  reg.gauge_max(g, 3);
  const auto h = reg.histogram("decode_words");
  reg.observe(h, 0);
  reg.observe(h, 5);

  ASSERT_EQ(reg.instruments().size(), 3u);
  const MetricsRegistry::Instrument& counter = reg.instruments()[c];
  EXPECT_EQ(counter.value, 3u);
  ASSERT_EQ(counter.per_instance.count(7u), 1u);
  EXPECT_EQ(counter.per_instance.at(7u), 2u);
  EXPECT_EQ(reg.instruments()[g].value, 5u);
  const MetricsRegistry::Instrument& hist = reg.instruments()[h];
  EXPECT_EQ(hist.value, 2u);
  EXPECT_EQ(hist.buckets[0], 1u);
  EXPECT_EQ(hist.buckets[3], 1u);
}

// Satellite 3 overhead check: the always-on hooks are array increments,
// and the optional series sampler + flight ring must not change protocol
// behaviour at all — and must stay within a loose wall-clock envelope on
// a WSS n=24 run (the tight ≤ a-few-% measurement lives in EXPERIMENTS.md;
// a unit test under CI load can only hold a generous bound without flaking).
TEST(MetricsRegistry, SamplerAndRingOverheadBounded) {
  const ProtocolParams p{24, 7, 3};
  const auto wall = [&p](Time dvt, std::size_t ring) {
    const auto t0 = std::chrono::steady_clock::now();
    const WssRun r = run_wss(p, NetworkKind::synchronous, 31, dvt, 0, ring);
    EXPECT_EQ(r.status, RunStatus::quiescent);
    EXPECT_GT(r.sim->metrics().events_processed, 0u);
    return std::make_pair(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count(),
                          r.sim->metrics().events_processed);
  };
  const auto [base_s, base_events] = wall(/*dvt=*/0, /*ring=*/0);
  const auto [instr_s, instr_events] = wall(/*dvt=*/10, /*ring=*/256);
  EXPECT_EQ(base_events, instr_events);  // observation never perturbs the run
  EXPECT_LT(instr_s, base_s * 3.0 + 0.25);
}

}  // namespace
}  // namespace nampc

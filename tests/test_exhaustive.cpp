// Exhaustive small-case enumeration: at (4,1,0) and (5,1,1) enumerate
// EVERY choice of the corrupt party and every basic misbehaviour, for both
// an honest and a corrupt dealer, and assert the sharing-stack invariants.
// Small enough to be exhaustive, large enough to catch asymmetries that
// fixed-corrupt-set tests miss (e.g. "last party corrupt" biases).
#include <gtest/gtest.h>

#include "sharing/vss.h"
#include "sim_helpers.h"

namespace nampc {
namespace {

using testing::make_sim;
using testing::SimSpec;

enum class Attack { silent, garble, delay_all };

std::shared_ptr<ScriptedAdversary> attacker(PartySet corrupt, Attack a) {
  auto adv = std::make_shared<ScriptedAdversary>(corrupt);
  for (int id : corrupt.to_vector()) {
    switch (a) {
      case Attack::silent:
        adv->silence(id);
        break;
      case Attack::garble:
        adv->garble_on(id, "");
        break;
      case Attack::delay_all:
        // Corrupt sender delays everything it sends by a long stretch.
        adv->add_rule(
            [id](const Message& m, Time) { return m.from == id; },
            [](const Message&, Time, Rng&) {
              SendDecision d;
              d.delay = 5000;
              return d;
            });
        break;
    }
  }
  return adv;
}

struct Enumerated {
  ProtocolParams params;
  NetworkKind kind;
};

class ExhaustiveWss : public ::testing::TestWithParam<Enumerated> {};

TEST_P(ExhaustiveWss, EveryCorruptPositionEveryAttack) {
  const auto& e = GetParam();
  const int budget =
      e.kind == NetworkKind::synchronous ? e.params.ts : e.params.ta;
  if (budget == 0) GTEST_SKIP();
  for (int corrupt_id = 0; corrupt_id < e.params.n; ++corrupt_id) {
    for (Attack a : {Attack::silent, Attack::garble, Attack::delay_all}) {
      const PartySet corrupt = PartySet::of({corrupt_id});
      auto sim = make_sim(
          {.params = e.params,
           .kind = e.kind,
           .seed = 700 + static_cast<std::uint64_t>(corrupt_id) * 10 +
                   static_cast<std::uint64_t>(a)},
          attacker(corrupt, a));
      std::vector<Wss*> inst;
      WssOptions opts;
      for (int i = 0; i < e.params.n; ++i) {
        inst.push_back(&sim->party(i).spawn<Wss>("wss", 0, 0, opts, nullptr));
      }
      Rng rng(13);
      const Polynomial q =
          Polynomial::random_with_constant(Fp(111), e.params.ts, rng);
      // Corrupt parties still run the code; dealer 0 may itself be corrupt.
      inst[0]->start({q});
      ASSERT_EQ(sim->run(), RunStatus::quiescent)
          << "corrupt=" << corrupt_id << " attack=" << static_cast<int>(a);

      if (corrupt_id == 0) {
        // Corrupt dealer: weak commitment only — row-holders consistent.
        for (int i = 1; i < e.params.n; ++i) {
          for (int j = i + 1; j < e.params.n; ++j) {
            Wss* wi = inst[static_cast<std::size_t>(i)];
            Wss* wj = inst[static_cast<std::size_t>(j)];
            if (wi->outcome() != WssOutcome::rows ||
                wj->outcome() != WssOutcome::rows) {
              continue;
            }
            EXPECT_EQ(wi->point_for(0, j), wj->point_for(0, i))
                << "corrupt=0 attack=" << static_cast<int>(a) << " pair " << i
                << "," << j;
          }
        }
      } else {
        // Honest dealer: every honest party ends with the right share.
        for (int i = 0; i < e.params.n; ++i) {
          if (i == corrupt_id) continue;
          Wss* w = inst[static_cast<std::size_t>(i)];
          ASSERT_EQ(w->outcome(), WssOutcome::rows)
              << "corrupt=" << corrupt_id << " attack=" << static_cast<int>(a)
              << " party=" << i;
          EXPECT_EQ(w->share(0), q.eval(eval_point(i)));
          EXPECT_LE(w->revealed_parties().size(),
                    e.params.ts - e.params.ta);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExhaustiveWss,
    ::testing::Values(Enumerated{{4, 1, 0}, NetworkKind::synchronous},
                      Enumerated{{5, 1, 1}, NetworkKind::synchronous},
                      Enumerated{{5, 1, 1}, NetworkKind::asynchronous}));

class ExhaustiveVss : public ::testing::TestWithParam<Enumerated> {};

TEST_P(ExhaustiveVss, EveryCorruptPositionStrongCommitment) {
  const auto& e = GetParam();
  const int budget =
      e.kind == NetworkKind::synchronous ? e.params.ts : e.params.ta;
  if (budget == 0) GTEST_SKIP();
  const int zsize = e.params.ts - e.params.ta;
  for (int corrupt_id = 0; corrupt_id < e.params.n; ++corrupt_id) {
    const PartySet corrupt = PartySet::of({corrupt_id});
    // Z = the corrupt party when sizes allow, else lexicographic filler.
    PartySet z;
    if (zsize > 0) z.insert(corrupt_id);
    for (int i = e.params.n - 1; i >= 0 && z.size() < zsize; --i) {
      if (!z.contains(i)) z.insert(i);
    }
    auto sim = make_sim({.params = e.params,
                         .kind = e.kind,
                         .seed = 800 + static_cast<std::uint64_t>(corrupt_id)},
                        attacker(corrupt, Attack::silent));
    std::vector<Vss*> inst;
    for (int i = 0; i < e.params.n; ++i) {
      inst.push_back(&sim->party(i).spawn<Vss>("vss", 0, 0, 1, z, nullptr));
    }
    Rng rng(14);
    const Polynomial q =
        Polynomial::random_with_constant(Fp(222), e.params.ts, rng);
    inst[0]->start({q});
    ASSERT_EQ(sim->run(), RunStatus::quiescent) << "corrupt=" << corrupt_id;
    if (corrupt_id == 0) continue;  // silent dealer: nothing to check
    for (int i = 0; i < e.params.n; ++i) {
      if (i == corrupt_id) continue;
      Vss* v = inst[static_cast<std::size_t>(i)];
      ASSERT_EQ(v->outcome(), WssOutcome::rows)
          << "corrupt=" << corrupt_id << " party=" << i;
      EXPECT_EQ(v->share(0), q.eval(eval_point(i)));
      EXPECT_TRUE(v->revealed_parties().subset_of(z));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExhaustiveVss,
    ::testing::Values(Enumerated{{4, 1, 0}, NetworkKind::synchronous},
                      Enumerated{{5, 1, 1}, NetworkKind::synchronous},
                      Enumerated{{5, 1, 1}, NetworkKind::asynchronous}));

}  // namespace
}  // namespace nampc

// Exhaustive small-case enumeration: at (4,1,0) and (5,1,1) enumerate
// EVERY choice of the corrupt party and every basic misbehaviour, for both
// an honest and a corrupt dealer, and assert the sharing-stack invariants.
// Small enough to be exhaustive, large enough to catch asymmetries that
// fixed-corrupt-set tests miss (e.g. "last party corrupt" biases).
//
// Every (corrupt position, attack) cell is an independent simulation, so
// each grid fans out through the sweep engine (--jobs / NAMPC_JOBS via
// sweep_default_jobs). Jobs return plain result structs; the gtest
// assertions run on the main thread in enumeration order.
#include <gtest/gtest.h>

#include "sharing/vss.h"
#include "sim_helpers.h"
#include "util/sweep.h"

namespace nampc {
namespace {

using testing::make_sim;
using testing::SimSpec;

enum class Attack { silent, garble, delay_all };

std::shared_ptr<ScriptedAdversary> attacker(PartySet corrupt, Attack a) {
  auto adv = std::make_shared<ScriptedAdversary>(corrupt);
  for (int id : corrupt.to_vector()) {
    switch (a) {
      case Attack::silent:
        adv->silence(id);
        break;
      case Attack::garble:
        adv->garble_on(id, "");
        break;
      case Attack::delay_all:
        // Corrupt sender delays everything it sends by a long stretch.
        adv->add_rule(
            [id](const Message& m, Time) { return m.from == id; },
            [](const Message&, Time, Rng&) {
              SendDecision d;
              d.delay = 5000;
              return d;
            });
        break;
    }
  }
  return adv;
}

struct Enumerated {
  ProtocolParams params;
  NetworkKind kind;
};

/// Pairwise consistency sample for the corrupt-dealer case: the common
/// point the two row-holders hold for each other.
struct PairRec {
  int i = 0;
  int j = 0;
  Fp point_ij;
  Fp point_ji;
};

/// Per-honest-party record for the honest-dealer case.
struct ShareRec {
  int id = 0;
  bool rows = false;
  Fp share;
  Fp expected;
  int revealed = 0;
  bool revealed_in_z = false;
};

struct WssCell {
  bool quiescent = false;
  std::vector<PairRec> pairs;    ///< corrupt dealer (corrupt_id == 0)
  std::vector<ShareRec> honest;  ///< honest dealer (corrupt_id != 0)
};

WssCell run_wss_cell(const Enumerated& e, int corrupt_id, Attack a) {
  const PartySet corrupt = PartySet::of({corrupt_id});
  auto sim = make_sim(
      {.params = e.params,
       .kind = e.kind,
       .seed = 700 + static_cast<std::uint64_t>(corrupt_id) * 10 +
               static_cast<std::uint64_t>(a)},
      attacker(corrupt, a));
  std::vector<Wss*> inst;
  WssOptions opts;
  for (int i = 0; i < e.params.n; ++i) {
    inst.push_back(&sim->party(i).spawn<Wss>("wss", 0, 0, opts, nullptr));
  }
  Rng rng(13);
  const Polynomial q =
      Polynomial::random_with_constant(Fp(111), e.params.ts, rng);
  // Corrupt parties still run the code; dealer 0 may itself be corrupt.
  inst[0]->start({q});
  WssCell out;
  out.quiescent = sim->run() == RunStatus::quiescent;
  if (!out.quiescent) return out;

  if (corrupt_id == 0) {
    for (int i = 1; i < e.params.n; ++i) {
      for (int j = i + 1; j < e.params.n; ++j) {
        Wss* wi = inst[static_cast<std::size_t>(i)];
        Wss* wj = inst[static_cast<std::size_t>(j)];
        if (wi->outcome() != WssOutcome::rows ||
            wj->outcome() != WssOutcome::rows) {
          continue;
        }
        out.pairs.push_back({i, j, wi->point_for(0, j), wj->point_for(0, i)});
      }
    }
  } else {
    for (int i = 0; i < e.params.n; ++i) {
      if (i == corrupt_id) continue;
      Wss* w = inst[static_cast<std::size_t>(i)];
      ShareRec rec;
      rec.id = i;
      rec.rows = w->outcome() == WssOutcome::rows;
      if (rec.rows) rec.share = w->share(0);
      rec.expected = q.eval(eval_point(i));
      rec.revealed = w->revealed_parties().size();
      out.honest.push_back(rec);
    }
  }
  return out;
}

class ExhaustiveWss : public ::testing::TestWithParam<Enumerated> {};

TEST_P(ExhaustiveWss, EveryCorruptPositionEveryAttack) {
  const auto& e = GetParam();
  const int budget =
      e.kind == NetworkKind::synchronous ? e.params.ts : e.params.ta;
  if (budget == 0) GTEST_SKIP();
  const std::vector<Attack> attacks = {Attack::silent, Attack::garble,
                                       Attack::delay_all};
  Sweep<WssCell> sweep;
  for (int corrupt_id = 0; corrupt_id < e.params.n; ++corrupt_id) {
    for (Attack a : attacks) {
      sweep.add([e, corrupt_id, a] { return run_wss_cell(e, corrupt_id, a); });
    }
  }
  const std::vector<WssCell> cells = sweep.run();

  std::size_t idx = 0;
  for (int corrupt_id = 0; corrupt_id < e.params.n; ++corrupt_id) {
    for (Attack a : attacks) {
      const WssCell& cell = cells[idx++];
      ASSERT_TRUE(cell.quiescent)
          << "corrupt=" << corrupt_id << " attack=" << static_cast<int>(a);
      if (corrupt_id == 0) {
        // Corrupt dealer: weak commitment only — row-holders consistent.
        for (const PairRec& pr : cell.pairs) {
          EXPECT_EQ(pr.point_ij, pr.point_ji)
              << "corrupt=0 attack=" << static_cast<int>(a) << " pair "
              << pr.i << "," << pr.j;
        }
      } else {
        // Honest dealer: every honest party ends with the right share.
        for (const ShareRec& rec : cell.honest) {
          ASSERT_TRUE(rec.rows)
              << "corrupt=" << corrupt_id << " attack=" << static_cast<int>(a)
              << " party=" << rec.id;
          EXPECT_EQ(rec.share, rec.expected);
          EXPECT_LE(rec.revealed, e.params.ts - e.params.ta);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExhaustiveWss,
    ::testing::Values(Enumerated{{4, 1, 0}, NetworkKind::synchronous},
                      Enumerated{{5, 1, 1}, NetworkKind::synchronous},
                      Enumerated{{5, 1, 1}, NetworkKind::asynchronous}));

struct VssCell {
  bool quiescent = false;
  bool checked = false;  ///< false for the silent-dealer position
  std::vector<ShareRec> honest;
};

VssCell run_vss_cell(const Enumerated& e, int corrupt_id) {
  const int zsize = e.params.ts - e.params.ta;
  const PartySet corrupt = PartySet::of({corrupt_id});
  // Z = the corrupt party when sizes allow, else lexicographic filler.
  PartySet z;
  if (zsize > 0) z.insert(corrupt_id);
  for (int i = e.params.n - 1; i >= 0 && z.size() < zsize; --i) {
    if (!z.contains(i)) z.insert(i);
  }
  auto sim = make_sim({.params = e.params,
                       .kind = e.kind,
                       .seed = 800 + static_cast<std::uint64_t>(corrupt_id)},
                      attacker(corrupt, Attack::silent));
  std::vector<Vss*> inst;
  for (int i = 0; i < e.params.n; ++i) {
    inst.push_back(&sim->party(i).spawn<Vss>("vss", 0, 0, 1, z, nullptr));
  }
  Rng rng(14);
  const Polynomial q =
      Polynomial::random_with_constant(Fp(222), e.params.ts, rng);
  inst[0]->start({q});
  VssCell out;
  out.quiescent = sim->run() == RunStatus::quiescent;
  if (!out.quiescent) return out;
  if (corrupt_id == 0) return out;  // silent dealer: nothing to check
  out.checked = true;
  for (int i = 0; i < e.params.n; ++i) {
    if (i == corrupt_id) continue;
    Vss* v = inst[static_cast<std::size_t>(i)];
    ShareRec rec;
    rec.id = i;
    rec.rows = v->outcome() == WssOutcome::rows;
    if (rec.rows) rec.share = v->share(0);
    rec.expected = q.eval(eval_point(i));
    rec.revealed_in_z = v->revealed_parties().subset_of(z);
    out.honest.push_back(rec);
  }
  return out;
}

class ExhaustiveVss : public ::testing::TestWithParam<Enumerated> {};

TEST_P(ExhaustiveVss, EveryCorruptPositionStrongCommitment) {
  const auto& e = GetParam();
  const int budget =
      e.kind == NetworkKind::synchronous ? e.params.ts : e.params.ta;
  if (budget == 0) GTEST_SKIP();
  const std::vector<VssCell> cells = sweep_run(
      sweep_default_jobs(), static_cast<std::size_t>(e.params.n),
      [&e](std::size_t i) { return run_vss_cell(e, static_cast<int>(i)); });
  for (int corrupt_id = 0; corrupt_id < e.params.n; ++corrupt_id) {
    const VssCell& cell = cells[static_cast<std::size_t>(corrupt_id)];
    ASSERT_TRUE(cell.quiescent) << "corrupt=" << corrupt_id;
    if (!cell.checked) continue;
    for (const ShareRec& rec : cell.honest) {
      ASSERT_TRUE(rec.rows)
          << "corrupt=" << corrupt_id << " party=" << rec.id;
      EXPECT_EQ(rec.share, rec.expected);
      EXPECT_TRUE(rec.revealed_in_z);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExhaustiveVss,
    ::testing::Values(Enumerated{{4, 1, 0}, NetworkKind::synchronous},
                      Enumerated{{5, 1, 1}, NetworkKind::synchronous},
                      Enumerated{{5, 1, 1}, NetworkKind::asynchronous}));

}  // namespace
}  // namespace nampc

// Unit tests: discrete-event simulator, routing, buffering, adversary
// model enforcement, event ordering.
#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace nampc {
namespace {

using testing::make_sim;
using testing::SimSpec;

/// Minimal instance: records arrivals, can ping peers.
class Probe : public ProtocolInstance {
 public:
  Probe(Party& party, std::string key) : ProtocolInstance(party, std::move(key)) {}

  void on_message(const Message& msg) override {
    arrivals.push_back({msg.from, msg.type, now()});
  }

  void ping(PartyId to, int type) { send(to, type, Words{}); }
  void ping_all(int type) { send_all(type, Words{}); }
  void timer_at(Time t, std::function<void()> fn) { at(t, std::move(fn)); }

  struct Arrival {
    PartyId from;
    int type;
    Time when;
  };
  std::vector<Arrival> arrivals;
};

TEST(Sim, SynchronousDeliveryWithinDelta) {
  auto sim = make_sim({.params = testing::p4_1_0()});
  std::vector<Probe*> probes;
  for (int i = 0; i < 4; ++i) probes.push_back(&sim->party(i).spawn<Probe>("probe"));
  probes[0]->ping_all(1);
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(probes[static_cast<std::size_t>(i)]->arrivals.size(), 1u);
    EXPECT_LE(probes[static_cast<std::size_t>(i)]->arrivals[0].when,
              sim->timing().delta);
  }
}

TEST(Sim, SynchronousFifoPerChannel) {
  auto sim = make_sim({.params = testing::p4_1_0(), .seed = 123});
  auto& p0 = sim->party(0).spawn<Probe>("probe");
  auto& p1 = sim->party(1).spawn<Probe>("probe");
  (void)p0;
  for (int k = 0; k < 50; ++k) {
    sim->party(0).spawn<Probe>("probe" + std::to_string(k)).ping(1, k);
    sim->party(1).spawn<Probe>("probe" + std::to_string(k));
  }
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  (void)p1;  // arrivals land on per-k probes; FIFO asserted below via times
  // Re-run with messages through a single instance to check ordering.
  auto sim2 = make_sim({.params = testing::p4_1_0(), .seed = 124});
  auto& a = sim2->party(0).spawn<Probe>("x");
  auto& b = sim2->party(1).spawn<Probe>("x");
  for (int k = 0; k < 50; ++k) a.ping(1, k);
  EXPECT_EQ(sim2->run(), RunStatus::quiescent);
  ASSERT_EQ(b.arrivals.size(), 50u);
  for (int k = 0; k < 50; ++k) {
    EXPECT_EQ(b.arrivals[static_cast<std::size_t>(k)].type, k);  // FIFO order
  }
}

TEST(Sim, MessagesBeforeTimersAtSameTick) {
  auto sim = make_sim({.params = testing::p4_1_0()});
  auto& a = sim->party(0).spawn<Probe>("x");
  auto& b = sim->party(1).spawn<Probe>("x");
  bool timer_saw_message = false;
  // Adversary-free sync: delay <= delta. Set a timer at exactly delta.
  b.timer_at(sim->timing().delta,
             [&] { timer_saw_message = !b.arrivals.empty(); });
  a.ping(1, 7);
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  EXPECT_TRUE(timer_saw_message);
}

TEST(Sim, BuffersMessagesForUnregisteredInstances) {
  auto sim = make_sim({.params = testing::p4_1_0()});
  auto& a = sim->party(0).spawn<Probe>("late");
  a.ping(1, 42);
  // Party 1 creates the instance only at time 100, long after arrival.
  Probe* late = nullptr;
  sim->schedule(100, [&] { late = &sim->party(1).spawn<Probe>("late"); });
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  ASSERT_NE(late, nullptr);
  ASSERT_EQ(late->arrivals.size(), 1u);
  EXPECT_EQ(late->arrivals[0].type, 42);
  EXPECT_GE(late->arrivals[0].when, 100);
}

TEST(Sim, HonestMessagesCannotBeDroppedByAdversary) {
  auto adv = std::make_shared<ScriptedAdversary>(PartySet::of({1}));
  adv->silence(0);  // rule targets an HONEST party: must be ignored
  adv->silence(1);  // rule targets the corrupt party: applies
  auto sim = make_sim({.params = testing::p4_1_0()}, adv);
  auto& a = sim->party(0).spawn<Probe>("x");
  auto& b = sim->party(1).spawn<Probe>("x");
  auto& c = sim->party(2).spawn<Probe>("x");
  a.ping(2, 1);  // honest -> delivered despite rule
  b.ping(2, 2);  // corrupt + silenced -> dropped
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  ASSERT_EQ(c.arrivals.size(), 1u);
  EXPECT_EQ(c.arrivals[0].type, 1);
}

TEST(Sim, SyncClampsHonestDelaysToDelta) {
  auto adv = std::make_shared<ScriptedAdversary>();
  adv->fixed_delay(10'000);  // way beyond delta; must be clamped for honest
  auto sim = make_sim({.params = testing::p4_1_0()}, adv);
  auto& a = sim->party(0).spawn<Probe>("x");
  auto& b = sim->party(1).spawn<Probe>("x");
  a.ping(1, 1);
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_LE(b.arrivals[0].when, sim->timing().delta);
}

TEST(Sim, AsyncAllowsArbitraryFiniteDelays) {
  auto adv = std::make_shared<ScriptedAdversary>();
  adv->fixed_delay(10'000);
  auto sim = make_sim(
      {.params = testing::p5_1_1(), .kind = NetworkKind::asynchronous}, adv);
  auto& a = sim->party(0).spawn<Probe>("x");
  auto& b = sim->party(1).spawn<Probe>("x");
  a.ping(1, 1);
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].when, 10'000);
}

TEST(Sim, CorruptionBudgetEnforced) {
  Simulation::Config cfg;
  cfg.params = testing::p4_1_0();  // ta = 0
  cfg.kind = NetworkKind::asynchronous;
  auto adv = std::make_shared<ScriptedAdversary>(PartySet::of({0}));
  EXPECT_THROW(Simulation(cfg, adv), InvariantError);  // 1 > ta = 0
}

TEST(Sim, InfeasibleParamsRejectedUnlessAllowed) {
  Simulation::Config cfg;
  cfg.params = {6, 2, 1};  // n = 2ts + 2ta: infeasible by Theorem 1.1
  EXPECT_THROW(Simulation(cfg, std::make_shared<Adversary>()), InvariantError);
  cfg.allow_infeasible = true;
  EXPECT_NO_THROW(Simulation(cfg, std::make_shared<Adversary>()));
}

TEST(Sim, DeterministicGivenSeed) {
  for (int rep = 0; rep < 2; ++rep) {
    auto sim = make_sim({.params = testing::p7_2_1(), .seed = 555});
    auto& a = sim->party(0).spawn<Probe>("x");
    auto& b = sim->party(3).spawn<Probe>("x");
    a.ping_all(9);
    EXPECT_EQ(sim->run(), RunStatus::quiescent);
    static Time first_time = -1;
    ASSERT_EQ(b.arrivals.size(), 1u);
    if (rep == 0) {
      first_time = b.arrivals[0].when;
    } else {
      EXPECT_EQ(b.arrivals[0].when, first_time);
    }
  }
}

TEST(Sim, AdversaryCannotSpoofEndpoints) {
  // Channels are authenticated (§3.1): a rewrite that changes the sender or
  // receiver must be rejected by the model-enforcement layer.
  auto adv = std::make_shared<ScriptedAdversary>(PartySet::of({1}));
  adv->add_rule(
      [](const Message& m, Time) { return m.from == 1; },
      [](const Message& m, Time, Rng&) {
        SendDecision d;
        Message alt = m;
        alt.from = 0;  // try to impersonate party 0
        d.replacement = std::move(alt);
        return d;
      });
  auto sim = make_sim({.params = testing::p4_1_0()}, adv);
  auto& a = sim->party(1).spawn<Probe>("x");
  sim->party(2).spawn<Probe>("x");
  EXPECT_THROW(a.ping(2, 1), InvariantError);
}

TEST(Sim, CorruptSenderMayExceedDeltaInSync) {
  // The synchronous bound applies to honest senders only; a corrupt party
  // may deliver arbitrarily late (it could equally not send at all).
  auto adv = std::make_shared<ScriptedAdversary>(PartySet::of({1}));
  adv->add_rule([](const Message& m, Time) { return m.from == 1; },
                [](const Message&, Time, Rng&) {
                  SendDecision d;
                  d.delay = 9999;
                  return d;
                });
  auto sim = make_sim({.params = testing::p4_1_0()}, adv);
  auto& a = sim->party(1).spawn<Probe>("x");
  auto& b = sim->party(2).spawn<Probe>("x");
  a.ping(2, 1);
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].when, 9999);
}

TEST(PartySetUtil, SubsetIteration) {
  int count = 0;
  PartySet::for_each_subset(5, 2, [&](PartySet s) {
    EXPECT_EQ(s.size(), 2);
    ++count;
  });
  EXPECT_EQ(count, 10);
  // k = 0 yields exactly the empty set.
  count = 0;
  PartySet::for_each_subset(5, 0, [&](PartySet s) {
    EXPECT_TRUE(s.empty());
    ++count;
  });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace nampc

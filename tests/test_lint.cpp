// nampc_lint pass tests: scanner/annotation grammar, per-pass true
// positives and true negatives on synthetic snippets (determinism,
// threshold, model, concurrency), suppression handling, threshold-table
// cross-checks (including the seeded wrong-constant mutant of ISSUE 5's
// acceptance criteria), report rendering (JSON + SARIF), and the
// whole-repo gates: zero active findings, and byte-identical reports
// across --jobs counts.
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "lint/lint.h"
#include "util/json_read.h"

namespace nampc::lint {
namespace {

// ------------------------------------------------------------- scanner ----

TEST(LintScanner, SplitsCodeAndComments) {
  const ScannedFile f = scan_source(
      "src/x.cpp",
      "int a;  // trailing note\n"
      "/* block */ int b;\n"
      "// only comment\n"
      "int c;\n");
  ASSERT_GE(f.lines.size(), 4u);  // a trailing '\n' may add one empty line
  EXPECT_NE(f.line(1).code.find("int a;"), std::string::npos);
  EXPECT_NE(f.line(1).comment.find("trailing note"), std::string::npos);
  EXPECT_NE(f.line(2).code.find("int b;"), std::string::npos);
  EXPECT_TRUE(f.line(3).comment_only());
  EXPECT_FALSE(f.line(4).comment_only());
}

TEST(LintScanner, BlanksStringContents) {
  // A string mentioning a banned token must not leak into the code part.
  const ScannedFile f = scan_source(
      "src/x.cpp", "log(\"std::random_device is banned\"); char c = 'x';\n");
  EXPECT_EQ(f.line(1).code.find("random_device"), std::string::npos);
  EXPECT_NE(f.line(1).code.find("\"\""), std::string::npos);
}

TEST(LintScanner, HandlesRawStringsAndMultiLineBlockComments) {
  const ScannedFile f = scan_source("src/x.cpp",
                                    "auto s = R\"(rand() inside raw)\";\n"
                                    "/* rand()\n"
                                    "   still a comment */ int z;\n");
  EXPECT_EQ(f.line(1).code.find("rand"), std::string::npos);
  EXPECT_EQ(f.line(2).code.find("rand"), std::string::npos);
  EXPECT_NE(f.line(3).code.find("int z;"), std::string::npos);
}

TEST(LintScanner, SuppressionSameLineAndAbove) {
  const ScannedFile f = scan_source(
      "src/x.cpp",
      "int a = rand();  // NOLINT-NAMPC(det-rand): seeded elsewhere\n"
      "// NOLINT-NAMPC(det-unordered,det-unordered-iter): lookup-only\n"
      "// (second comment line of the run)\n"
      "std::unordered_map<int, int> m;\n"
      "int b;\n");
  EXPECT_TRUE(is_suppressed(f, 1, kRuleRand));
  EXPECT_FALSE(is_suppressed(f, 1, kRuleUnordered));
  EXPECT_TRUE(is_suppressed(f, 4, kRuleUnordered));
  EXPECT_TRUE(is_suppressed(f, 4, kRuleUnorderedIter));
  EXPECT_FALSE(is_suppressed(f, 5, kRuleUnordered));  // code line breaks run
}

TEST(LintScanner, WildcardSuppression) {
  const ScannedFile f =
      scan_source("src/x.cpp", "int a = rand();  // NOLINT-NAMPC(*): test\n");
  EXPECT_TRUE(is_suppressed(f, 1, kRuleRand));
  EXPECT_TRUE(is_suppressed(f, 1, kRuleModelStatic));
}

TEST(LintScanner, ThresholdAnnotationTargets) {
  const ScannedFile f = scan_source("src/broadcast/x.cpp",
                                    "// LINT:threshold(aba.round_quorum)\n"
                                    "int q = n() - params().ts;\n"
                                    "int r = 0;  // LINT:threshold(other)\n");
  ASSERT_TRUE(threshold_symbol_for(f, 2).has_value());
  EXPECT_EQ(*threshold_symbol_for(f, 2), "aba.round_quorum");
  EXPECT_EQ(*threshold_symbol_for(f, 3), "other");
  const auto anns = threshold_annotations(f);
  ASSERT_EQ(anns.size(), 2u);
  EXPECT_EQ(anns[0].target_line, 2);
  EXPECT_EQ(anns[1].target_line, 3);
}

// ------------------------------------------------- threshold machinery ----

TEST(LintThreshold, NormalizesAccessorIdioms) {
  const auto toks = normalize_tokens("if (c >= party.sim().n() - params().ts)");
  std::string joined;
  for (const auto& t : toks) joined += t + " ";
  EXPECT_NE(joined.find("n - ts"), std::string::npos) << joined;
}

TEST(LintThreshold, ExtractsMaximalSpans) {
  EXPECT_EQ(threshold_spans("q = n() - params().ts;"),
            (std::vector<std::string>{"n-ts"}));
  EXPECT_EQ(threshold_spans("q = n() - params().ts - 1;"),
            (std::vector<std::string>{"n-ts-1"}));
  EXPECT_EQ(threshold_spans("v = 2 * p.ts + 1;"),
            (std::vector<std::string>{"2*ts+1"}));
  EXPECT_EQ(threshold_spans("if (m < ts() + ta() + 1) return;"),
            (std::vector<std::string>{"ts+ta+1"}));
  EXPECT_EQ(threshold_spans("REQUIRE(m >= k + 2 * e + 1, \"x\");"),
            (std::vector<std::string>{"k+2*e+1"}));
}

TEST(LintThreshold, BareParamsTriggerOnlyAfterComparison) {
  // Plain function arguments are not thresholds...
  EXPECT_TRUE(threshold_spans("rs_decode(pts, ts(), 0);").empty());
  EXPECT_TRUE(threshold_spans("int helper(int ts, int ta);").empty());
  // ...but a comparison against the bare parameter is.
  EXPECT_EQ(threshold_spans("if (count > ts()) accuse = true;"),
            (std::vector<std::string>{">ts"}));
  EXPECT_EQ(threshold_spans("if (x <= ta) return;"),
            (std::vector<std::string>{"<=ta"}));
}

TEST(LintThreshold, FormMatchingIncludingWildcard) {
  EXPECT_TRUE(span_matches_form("n-ts", "n-ts"));
  EXPECT_FALSE(span_matches_form("n-ts-1", "n-ts"));
  EXPECT_FALSE(span_matches_form("n-ts", "n-ts-1"));
  EXPECT_TRUE(span_matches_form("n-ts+dealer_u_.size", "n-ts+*"));
  EXPECT_FALSE(span_matches_form("n-ts", "n-ts+*"));
  EXPECT_FALSE(span_matches_form("n-ts+", "n-ts+*"));
}

[[nodiscard]] ThresholdTable test_table() {
  std::string error;
  auto table = ThresholdTable::parse(
      R"({"schema": "nampc-thresholds/1", "thresholds": [
           {"symbol": "aba.round_quorum", "paper": "P", "meaning": "m",
            "forms": ["n-ts"]},
           {"symbol": "aba.decide_quorum", "forms": ["2*ts+1"]}
         ]})",
      error);
  EXPECT_TRUE(table.has_value()) << error;
  return *table;
}

[[nodiscard]] std::vector<Finding> active_of(const Report& report) {
  std::vector<Finding> out;
  for (const Finding& f : report.findings) {
    if (!f.suppressed) out.push_back(f);
  }
  return out;
}

TEST(LintThreshold, AnnotatedAndMatchingIsClean) {
  const ThresholdTable table = test_table();
  const Report r = lint_sources(
      {{"src/broadcast/x.cpp",
        "// LINT:threshold(aba.round_quorum)\n"
        "const int q = n() - params().ts;\n"}},
      &table);
  EXPECT_TRUE(active_of(r).empty()) << [&] {
    std::ostringstream os;
    r.render_text(os);
    return os.str();
  }();
}

TEST(LintThreshold, MissingAnnotationFlagged) {
  const ThresholdTable table = test_table();
  const Report r = lint_sources(
      {{"src/broadcast/x.cpp", "const int q = n() - params().ts;\n"}}, &table);
  ASSERT_EQ(active_of(r).size(), 1u);
  EXPECT_EQ(active_of(r)[0].rule, kRuleThresholdMissing);
}

TEST(LintThreshold, WrongConstantMutantFlagged) {
  // The acceptance-criteria mutant: n-ts-1 annotated as the n-ts quorum.
  const ThresholdTable table = test_table();
  const Report r = lint_sources(
      {{"src/broadcast/x.cpp",
        "// LINT:threshold(aba.round_quorum)\n"
        "const int q = n() - params().ts - 1;\n"}},
      &table);
  ASSERT_EQ(active_of(r).size(), 1u);
  EXPECT_EQ(active_of(r)[0].rule, kRuleThresholdMismatch);
  EXPECT_NE(active_of(r)[0].message.find("n-ts-1"), std::string::npos);
}

TEST(LintThreshold, UnknownSymbolAndOrphanFlagged) {
  const ThresholdTable table = test_table();
  const Report r = lint_sources(
      {{"src/broadcast/x.cpp",
        "// LINT:threshold(nonexistent.symbol)\n"
        "const int q = n() - params().ts;\n"
        "// LINT:threshold(aba.round_quorum)\n"
        "int plain = 0;\n"}},
      &table);
  const auto active = active_of(r);
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0].rule, kRuleThresholdUnknown);
  EXPECT_EQ(active[1].rule, kRuleThresholdOrphan);
}

TEST(LintThreshold, OutOfScopeDirectoriesIgnored) {
  const ThresholdTable table = test_table();
  const Report r = lint_sources(
      {{"src/util/x.cpp", "const int q = n() - params().ts;\n"}}, &table);
  EXPECT_TRUE(active_of(r).empty());
}

TEST(LintThreshold, TableParserRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ThresholdTable::parse("not json", error).has_value());
  EXPECT_FALSE(
      ThresholdTable::parse(R"({"schema": "wrong/9", "thresholds": []})", error)
          .has_value());
  EXPECT_FALSE(ThresholdTable::parse(
                   R"({"schema": "nampc-thresholds/1", "thresholds": [
                        {"symbol": "a", "forms": []}]})",
                   error)
                   .has_value());
  EXPECT_FALSE(ThresholdTable::parse(
                   R"({"schema": "nampc-thresholds/1", "thresholds": [
                        {"symbol": "a", "forms": ["x"]},
                        {"symbol": "a", "forms": ["y"]}]})",
                   error)
                   .has_value());
}

// ---------------------------------------------------------- determinism ----

TEST(LintDeterminism, FlagsBannedRandomnessEverywhereButRngHeader) {
  const Report r = lint_sources(
      {{"src/net/x.cpp", "std::random_device rd;\n"},
       {"src/util/rng.h", "std::random_device seeder;\n"},
       {"tools/x.cpp", "int v = rand();\n"}},
      nullptr);
  const auto active = active_of(r);
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0].file, "src/net/x.cpp");
  EXPECT_EQ(active[0].rule, kRuleRand);
  EXPECT_EQ(active[1].file, "tools/x.cpp");
}

TEST(LintDeterminism, IncludeLinesAndStringsDoNotTrip) {
  const Report r = lint_sources(
      {{"src/net/x.cpp",
        "#include <unordered_map>\n"
        "#include <random>\n"
        "const char* kDoc = \"rand() and std::unordered_map are banned\";\n"}},
      nullptr);
  EXPECT_TRUE(active_of(r).empty());
}

TEST(LintDeterminism, FlagsUnorderedDeclarationAndIteration) {
  const Report r = lint_sources(
      {{"src/net/x.cpp",
        "std::unordered_map<int, int> table;\n"
        "for (const auto& [k, v] : table) use(k, v);\n"
        "for (int i = 0; i < 3; ++i) use(i, i);\n"}},
      nullptr);
  const auto active = active_of(r);
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0].rule, kRuleUnordered);
  EXPECT_EQ(active[0].line, 1);
  EXPECT_EQ(active[1].rule, kRuleUnorderedIter);
  EXPECT_EQ(active[1].line, 2);
}

TEST(LintDeterminism, SuppressionKeepsFindingButNotActive) {
  const Report r = lint_sources(
      {{"src/net/x.cpp",
        "// NOLINT-NAMPC(det-unordered): lookup-only\n"
        "std::unordered_map<int, int> memo;\n"}},
      nullptr);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(r.findings[0].suppressed);
  EXPECT_EQ(r.active, 0);
  EXPECT_EQ(r.suppressed, 1);
}

// ---------------------------------------------------------------- model ----

TEST(LintModel, FlagsContractBypasses) {
  const Report r = lint_sources(
      {{"src/sharing/x.cpp",
        "sim().party(j).deliver(m);\n"
        "post_message(env);\n"
        "sim().schedule(when, fn, 0);\n"
        "auto& g = sim().shared_state<G>(key, mk);\n"
        "static int counter = 0;\n"}},
      nullptr);
  const auto active = active_of(r);
  ASSERT_EQ(active.size(), 5u);
  EXPECT_EQ(active[0].rule, kRuleModelDelivery);
  EXPECT_EQ(active[1].rule, kRuleModelDelivery);
  EXPECT_EQ(active[2].rule, kRuleModelSchedule);
  EXPECT_EQ(active[3].rule, kRuleModelShared);
  EXPECT_EQ(active[4].rule, kRuleModelStatic);
}

TEST(LintModel, SafeSurfaceAndImmutableStaticsPass) {
  const Report r = lint_sources(
      {{"src/sharing/x.cpp",
        "send(j, kRow, w.take());\n"
        "send_all(kEcho, m);\n"
        "at(start + delta, [this] { step(); }, 1);\n"
        "after(delta, [this] { step(); }, 1);\n"
        "static constexpr int kMax = 64;\n"
        "static const char* name();\n"
        "static thread_local Workspace ws;\n"
        "static int helper(int x) { return x; }\n"}},
      nullptr);
  EXPECT_TRUE(active_of(r).empty());
}

TEST(LintModel, OutOfScopeLayersIgnored) {
  // net/ implements the mechanism; util/ and tools/ sit outside the model.
  const Report r = lint_sources({{"src/net/x.cpp", "post_message(env);\n"},
                                 {"tools/x.cpp", "static int hits = 0;\n"}},
                                nullptr);
  EXPECT_TRUE(active_of(r).empty());
}

// ---------------------------------------------------------- concurrency ----

TEST(LintConcurrency, FlagsUnannotatedPrimitives) {
  // Raw std lock types are always findings (the capability analysis cannot
  // see them); atomics need a NAMPC_GUARDED_BY-family or NAMPC_LOCK_FREE
  // annotation somewhere in the declaration statement.
  const Report r = lint_sources(
      {{"src/net/x.h",
        "std::mutex mu_;\n"
        "std::condition_variable cv_;\n"
        "std::atomic<int> count_{0};\n"}},
      nullptr);
  const auto active = active_of(r);
  ASSERT_EQ(active.size(), 3u);
  EXPECT_EQ(active[0].rule, kRuleConcGuard);
  EXPECT_NE(active[0].message.find("Mutex/CondVar"), std::string::npos);
  EXPECT_EQ(active[1].rule, kRuleConcGuard);
  EXPECT_EQ(active[2].rule, kRuleConcGuard);
  EXPECT_NE(active[2].message.find("NAMPC_GUARDED_BY"), std::string::npos);
}

TEST(LintConcurrency, AnnotatedVocabularyPasses) {
  // The ThreadedFabric shape: wrapper types, guarded containers, justified
  // lock-free atomics, RAII acquisition, predicated waits — zero findings.
  const Report r = lint_sources(
      {{"src/net/x.h",
        "Mutex mu;\n"
        "CondVar cv;\n"
        "std::deque<int> q NAMPC_GUARDED_BY(mu);\n"
        "NAMPC_LOCK_FREE(\"watchdog flag, polled by every pump loop\")\n"
        "std::atomic<bool> stop_{false};\n"
        "std::atomic<int> hits_ NAMPC_GUARDED_BY(mu);\n"
        "void f() {\n"
        "  const MutexLock lock(mu);\n"
        "  cv.wait(mu, [&] { return !stop_.load(); });\n"
        "  cv.wait_for(mu, wait, [&] { return !stop_.load(); });\n"
        "}\n"}},
      nullptr);
  EXPECT_TRUE(active_of(r).empty()) << [&] {
    std::ostringstream os;
    r.render_text(os);
    return os.str();
  }();
}

TEST(LintConcurrency, FlagsRawLockCalls) {
  const Report r = lint_sources({{"src/net/x.cpp",
                                  "mu_.lock();\n"
                                  "step();\n"
                                  "mu_.unlock();\n"}},
                                nullptr);
  const auto active = active_of(r);
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0].rule, kRuleConcRawLock);
  EXPECT_EQ(active[1].rule, kRuleConcRawLock);
  EXPECT_NE(active[0].message.find("MutexLock"), std::string::npos);
}

TEST(LintConcurrency, FlagsPredicatelessWaits) {
  // wait(lock) and wait_for(lock, timeout) lack the predicate argument;
  // the predicated forms in AnnotatedVocabularyPasses are the fix.
  const Report r = lint_sources({{"src/net/x.cpp",
                                  "cv.wait(lk);\n"
                                  "cv.wait_for(lk, ms);\n"
                                  "cv.wait_until(lk, deadline);\n"}},
                                nullptr);
  const auto active = active_of(r);
  ASSERT_EQ(active.size(), 3u);
  for (const Finding& f : active) EXPECT_EQ(f.rule, kRuleConcWaitPred);
}

TEST(LintConcurrency, WallClockAllowlist) {
  // steady_clock/this_thread/sleep_for outside the allowlist are findings
  // (the 2 ms polling-loop shape this PR removed from run_threaded); the
  // threaded backend and bench timers keep their wall clocks.
  const Report flagged = lint_sources(
      {{"src/obs/x.cpp",
        "auto t0 = std::chrono::steady_clock::now();\n"
        "std::this_thread::sleep_for(std::chrono::milliseconds(2));\n"}},
      nullptr);
  const auto active = active_of(flagged);
  ASSERT_EQ(active.size(), 3u);  // steady_clock, this_thread, sleep_for
  for (const Finding& f : active) EXPECT_EQ(f.rule, kRuleConcWallClock);

  const Report allowed = lint_sources(
      {{"src/net/threaded.cpp",
        "auto t0 = std::chrono::steady_clock::now();\n"
        "auto id = std::this_thread::get_id();\n"},
       {"bench/x.cpp",
        "std::this_thread::sleep_for(tick);\n"
        "auto t1 = std::chrono::steady_clock::now();\n"}},
      nullptr);
  EXPECT_TRUE(active_of(allowed).empty());
}

TEST(LintConcurrency, ProtocolScopeBansAllPrimitives) {
  // Protocol code is single-threaded per Simulation by model contract:
  // zero primitives, wrappers included. thread_local stays legal (the
  // sanctioned per-thread scratch idiom, e.g. rs/reed_solomon.cpp).
  const Report r = lint_sources({{"src/sharing/x.cpp",
                                  "std::mutex mu_;\n"
                                  "std::atomic<int> a_{0};\n"
                                  "Mutex wrapped_;\n"
                                  "std::thread worker_;\n"
                                  "static thread_local Workspace ws;\n"}},
                                nullptr);
  const auto active = active_of(r);
  ASSERT_EQ(active.size(), 4u);
  for (const Finding& f : active) EXPECT_EQ(f.rule, kRuleConcProtocol);
}

TEST(LintConcurrency, SuppressionAndVocabularyHeaderExempt) {
  const Report r = lint_sources(
      {{"src/net/x.h",
        "std::mutex legacy_;  // NOLINT-NAMPC(conc-guard): migration "
        "pending\n"},
       // The vocabulary header necessarily holds the raw primitives it
       // wraps; the pass skips it entirely.
       {"src/util/thread_safety.h",
        "std::mutex mu_;\n"
        "void lock() { mu_.lock(); }\n"}},
      nullptr);
  EXPECT_TRUE(active_of(r).empty());
  EXPECT_EQ(r.suppressed, 1);
}

// ----------------------------------------------------------- whole repo ----

[[nodiscard]] std::string repo_root() {
#ifdef NAMPC_SOURCE_DIR
  return NAMPC_SOURCE_DIR;
#else
  return ".";
#endif
}

TEST(LintRepo, ZeroActiveFindings) {
  Options options;
  const Report r = lint_tree(repo_root(), options);
  std::ostringstream os;
  r.render_text(os);
  EXPECT_EQ(r.active, 0) << os.str();
  EXPECT_GT(r.files_scanned.size(), 50u);
  // The audited tree really is annotated: suppressions exist and every
  // table symbol is exercised (no unused-symbol findings counts as proof).
  EXPECT_GT(r.suppressed, 0);
}

TEST(LintRepo, ReportsByteIdenticalAcrossJobCounts) {
  Options serial;
  serial.jobs = 1;
  Options parallel;
  parallel.jobs = 8;
  const Report a = lint_tree(repo_root(), serial);
  const Report b = lint_tree(repo_root(), parallel);
  std::ostringstream ja;
  std::ostringstream jb;
  a.render_json(ja);
  b.render_json(jb);
  EXPECT_EQ(ja.str(), jb.str());
  std::ostringstream ta;
  std::ostringstream tb;
  a.render_text(ta, true);
  b.render_text(tb, true);
  EXPECT_EQ(ta.str(), tb.str());
}

TEST(LintRepo, SeededMutantIsCaught) {
  // In-memory variant of the acceptance-criteria check: take the real
  // threshold table, feed a wrong-constant protocol snippet through it.
  std::ifstream in(repo_root() + "/docs/THRESHOLDS.json");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string error;
  const auto table = ThresholdTable::parse(ss.str(), error);
  ASSERT_TRUE(table.has_value()) << error;
  const Report r = lint_sources(
      {{"src/broadcast/mutant.cpp",
        "// LINT:threshold(acast.output_quorum)\n"
        "if (who.size() >= n() - params().ts - 1) {\n"
        "}\n"}},
      &*table);
  ASSERT_EQ(active_of(r).size(), 1u);
  EXPECT_EQ(active_of(r)[0].rule, kRuleThresholdMismatch);
}

TEST(LintReport, JsonIsParseableAndSchemaTagged) {
  const Report r = lint_sources(
      {{"src/net/x.cpp", "std::unordered_map<int, int> t;\n"}}, nullptr);
  std::ostringstream os;
  r.render_json(os);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(json_parse(os.str(), root, error)) << error;
  EXPECT_EQ(root.at("schema").text, "nampc-lint/1");
  EXPECT_EQ(root.at("findings").items.size(), 1u);
  EXPECT_EQ(root.at("findings").items[0].at("rule").text, kRuleUnordered);
}

TEST(LintReport, SarifIsParseableAndCarriesSuppressions) {
  const Report r = lint_sources(
      {{"src/net/x.h",
        "std::mutex mu_;\n"
        "std::mutex legacy_;  // NOLINT-NAMPC(conc-guard): migration\n"}},
      nullptr);
  std::ostringstream os;
  r.render_sarif(os);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(json_parse(os.str(), root, error)) << error;
  EXPECT_EQ(root.at("version").text, "2.1.0");
  ASSERT_EQ(root.at("runs").items.size(), 1u);
  const JsonValue& run = root.at("runs").items[0];
  const JsonValue& driver = run.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").text, "nampc_lint");
  // Every catalogue rule ships as a reportingDescriptor.
  EXPECT_EQ(driver.at("rules").items.size(), rule_catalogue().size());
  ASSERT_EQ(run.at("results").items.size(), 2u);
  const JsonValue& active = run.at("results").items[0];
  EXPECT_EQ(active.at("ruleId").text, kRuleConcGuard);
  EXPECT_EQ(active.at("locations")
                .items[0]
                .at("physicalLocation")
                .at("artifactLocation")
                .at("uri")
                .text,
            "src/net/x.h");
  // The NOLINT-suppressed finding still appears, flagged inSource — code
  // scanning then shows it as reviewed rather than silently dropping it.
  const JsonValue& suppressed = run.at("results").items[1];
  ASSERT_EQ(suppressed.at("suppressions").items.size(), 1u);
  EXPECT_EQ(suppressed.at("suppressions").items[0].at("kind").text,
            "inSource");
}

}  // namespace
}  // namespace nampc::lint

// Robustness / fault-injection tests: corrupt parties spraying random
// garbage payloads, wrong-length vectors, replayed and type-confused
// messages into every protocol of the stack. The honest protocol must
// neither crash nor lose its guarantees — malformed traffic is Byzantine
// behaviour like any other. Every run carries the full invariant-monitor
// catalogue (sim_helpers.h make_monitored_sim): the theorems must hold not
// just at the asserted outputs but at every intermediate primitive.
#include <gtest/gtest.h>

#include "mpc/mpc.h"
#include "sharing/vss.h"
#include "sim_helpers.h"

namespace nampc {
namespace {

using testing::make_monitored_sim;
using testing::make_sim;
using testing::SimSpec;

/// Rewrites every payload from `p` into random junk of random length, and
/// randomises the message type half of the time.
std::shared_ptr<ScriptedAdversary> garbage_adversary(PartySet corrupt) {
  auto adv = std::make_shared<ScriptedAdversary>(corrupt);
  adv->add_rule(
      [corrupt](const Message& m, Time) { return corrupt.contains(m.from); },
      [](const Message& m, Time, Rng& rng) {
        SendDecision d;
        Message alt = m;
        const std::uint64_t len = rng.next_below(6);
        alt.payload.clear();
        for (std::uint64_t i = 0; i < len; ++i) {
          alt.payload.push_back(rng.next_u64());
        }
        if (rng.next_bool()) alt.type = static_cast<int>(rng.next_below(9));
        d.replacement = std::move(alt);
        return d;
      });
  return adv;
}

struct FuzzCase {
  NetworkKind kind;
  std::uint64_t seed;
};

class GarbageTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(GarbageTest, WssSurvivesGarbageParties) {
  const auto& c = GetParam();
  const ProtocolParams p{7, 2, 1};
  const int budget = c.kind == NetworkKind::synchronous ? p.ts : p.ta;
  PartySet corrupt;
  for (int i = 0; i < budget; ++i) corrupt.insert(p.n - 1 - i);
  auto sim = make_monitored_sim({.params = p, .kind = c.kind, .seed = c.seed},
                                garbage_adversary(corrupt));
  std::vector<Wss*> inst;
  WssOptions opts;
  for (int i = 0; i < p.n; ++i) {
    inst.push_back(&sim->party(i).spawn<Wss>("wss", 0, 0, opts, nullptr));
  }
  Rng rng(c.seed);
  const Polynomial q = Polynomial::random_with_constant(Fp(99), p.ts, rng);
  inst[0]->start({q});
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  EXPECT_TRUE(sim.monitors->ok()) << sim.monitors->violations().front().detail;
  for (int i = 0; i < p.n; ++i) {
    if (corrupt.contains(i)) continue;
    Wss* w = inst[static_cast<std::size_t>(i)];
    ASSERT_EQ(w->outcome(), WssOutcome::rows) << "party " << i;
    EXPECT_EQ(w->share(0), q.eval(eval_point(i)));
  }
}

TEST_P(GarbageTest, VssSurvivesGarbageParties) {
  const auto& c = GetParam();
  const ProtocolParams p{4, 1, 0};
  if (c.kind == NetworkKind::asynchronous) {
    GTEST_SKIP() << "ta = 0: no corruption budget in async";
  }
  const PartySet corrupt = PartySet::of({3});
  auto sim = make_monitored_sim({.params = p, .kind = c.kind, .seed = c.seed},
                                garbage_adversary(corrupt));
  std::vector<Vss*> inst;
  for (int i = 0; i < p.n; ++i) {
    inst.push_back(
        &sim->party(i).spawn<Vss>("vss", 0, 0, 1, PartySet::of({3}), nullptr));
  }
  Rng rng(c.seed ^ 5);
  const Polynomial q = Polynomial::random_with_constant(Fp(123), p.ts, rng);
  inst[0]->start({q});
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  EXPECT_TRUE(sim.monitors->ok()) << sim.monitors->violations().front().detail;
  for (int i = 0; i < 3; ++i) {
    Vss* v = inst[static_cast<std::size_t>(i)];
    ASSERT_EQ(v->outcome(), WssOutcome::rows) << "party " << i;
    EXPECT_EQ(v->share(0), q.eval(eval_point(i)));
  }
}

TEST_P(GarbageTest, MpcSurvivesGarbageParties) {
  const auto& c = GetParam();
  const ProtocolParams p{5, 1, 1};
  const PartySet corrupt = PartySet::of({4});
  Circuit circuit;
  const int a = circuit.input(0);
  const int b = circuit.input(1);
  circuit.mark_output(circuit.mul(a, b));
  auto sim = make_monitored_sim({.params = p, .kind = c.kind, .seed = c.seed},
                                garbage_adversary(corrupt));
  std::vector<Mpc*> inst;
  for (int i = 0; i < p.n; ++i) {
    inst.push_back(&sim->party(i).spawn<Mpc>(
        "mpc", circuit, FpVec{Fp(static_cast<std::uint64_t>(i + 2))},
        nullptr));
  }
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  EXPECT_TRUE(sim.monitors->ok()) << sim.monitors->violations().front().detail;
  // 2 * 3 = 6 regardless of what the garbage party sprays.
  for (int i = 0; i < 4; ++i) {
    Mpc* m = inst[static_cast<std::size_t>(i)];
    ASSERT_TRUE(m->has_output()) << "party " << i;
    EXPECT_EQ(m->output()[0], Fp(6));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GarbageTest,
    ::testing::Values(FuzzCase{NetworkKind::synchronous, 301},
                      FuzzCase{NetworkKind::synchronous, 302},
                      FuzzCase{NetworkKind::asynchronous, 303},
                      FuzzCase{NetworkKind::asynchronous, 304}));

TEST(Robustness, ReplayedMessagesAreIdempotent) {
  // A corrupt party duplicates every message it sends (replay): dedup
  // logic in the receivers must keep the protocols correct.
  const ProtocolParams p{7, 2, 1};
  const PartySet corrupt = PartySet::of({6});
  auto adv = std::make_shared<ScriptedAdversary>(corrupt);
  adv->add_rule(
      [](const Message& m, Time) { return m.from == 6; },
      [](const Message& m, Time, Rng&) {
        SendDecision d;
        Message copy = m;  // schedule an extra copy with default delay
        d.replacement = std::move(copy);
        return d;
      });
  auto sim = make_monitored_sim({.params = p, .kind = NetworkKind::synchronous,
                                 .seed = 305},
                                adv);
  std::vector<Wss*> inst;
  WssOptions opts;
  for (int i = 0; i < p.n; ++i) {
    inst.push_back(&sim->party(i).spawn<Wss>("wss", 0, 0, opts, nullptr));
  }
  Rng rng(306);
  const Polynomial q = Polynomial::random_with_constant(Fp(55), p.ts, rng);
  inst[0]->start({q});
  EXPECT_EQ(sim->run(), RunStatus::quiescent);
  EXPECT_TRUE(sim.monitors->ok()) << sim.monitors->violations().front().detail;
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(inst[static_cast<std::size_t>(i)]->outcome(), WssOutcome::rows);
    EXPECT_EQ(inst[static_cast<std::size_t>(i)]->share(0),
              q.eval(eval_point(i)));
  }
}

}  // namespace
}  // namespace nampc
